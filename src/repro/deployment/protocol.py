"""JSON-lines wire protocol between instrumented clients and the controller.

One JSON object per line (newline-delimited), UTF-8.  Client->server
messages (hello, measurement, request, stats_request, metrics_request,
resilience, bye) and server->client replies (assign, stats, metrics).
The paper notes the per-call overhead is exactly the first pair: "one
measurement update and one control message exchange per call" (§7); the
operator-facing stats/metrics exchanges are off the call path.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Any, Union

from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import OptionKind, RelayOption

__all__ = [
    "HelloMessage",
    "MeasurementMessage",
    "RequestMessage",
    "AssignMessage",
    "StatsRequestMessage",
    "StatsMessage",
    "MetricsRequestMessage",
    "MetricsMessage",
    "ResilienceMessage",
    "ByeMessage",
    "Message",
    "encode_message",
    "decode_message",
    "encode_option",
    "decode_option",
    "ProtocolError",
]

MAX_LINE_BYTES = 64 * 1024


class ProtocolError(ValueError):
    """Raised on malformed or unknown wire messages."""


def encode_option(option: RelayOption) -> dict[str, Any]:
    """Wire form of a relaying option."""
    return {"kind": option.kind.value, "ingress": option.ingress, "egress": option.egress}


def decode_option(data: dict[str, Any]) -> RelayOption:
    """Parse the wire form back into a :class:`RelayOption`."""
    try:
        kind = OptionKind(data["kind"])
        return RelayOption(kind=kind, ingress=data.get("ingress"), egress=data.get("egress"))
    except (KeyError, ValueError, TypeError) as exc:
        raise ProtocolError(f"bad option payload: {data!r}") from exc


@dataclass(frozen=True, slots=True)
class HelloMessage:
    """Client introduction: who and where."""

    client_id: int
    site: str

    type: str = "hello"


@dataclass(frozen=True, slots=True)
class MeasurementMessage:
    """One completed call's measured network metrics."""

    src_id: int
    dst_id: int
    t_hours: float
    option: dict[str, Any]
    rtt_ms: float
    loss_rate: float
    jitter_ms: float

    type: str = "measurement"

    def metrics(self) -> PathMetrics:
        return PathMetrics(
            rtt_ms=self.rtt_ms, loss_rate=self.loss_rate, jitter_ms=self.jitter_ms
        )


@dataclass(frozen=True, slots=True)
class RequestMessage:
    """Pre-call relay query: which option should this call use?"""

    src_id: int
    dst_id: int
    t_hours: float
    options: list[dict[str, Any]]

    type: str = "request"


@dataclass(frozen=True, slots=True)
class AssignMessage:
    """Controller's reply to a request."""

    option: dict[str, Any]

    type: str = "assign"


@dataclass(frozen=True, slots=True)
class StatsRequestMessage:
    """Operator query: ask the controller for its counters."""

    type: str = "stats_request"


@dataclass(frozen=True, slots=True)
class StatsMessage:
    """Controller counters (measurements, requests, clients, refreshes)
    plus the resilience observables: client-reported fallbacks/retries,
    reconnects seen server-side, per-message policy errors, and faults the
    chaos harness injected.  The resilience fields default to zero so v1
    peers interoperate."""

    n_measurements: int
    n_requests: int
    n_clients: int
    n_refreshes: int
    n_fallbacks: int = 0
    n_retries: int = 0
    n_reconnects: int = 0
    n_policy_errors: int = 0
    n_faults_injected: int = 0

    type: str = "stats"


@dataclass(frozen=True, slots=True)
class MetricsRequestMessage:
    """Operator query: scrape the controller's metrics registry."""

    type: str = "metrics_request"


@dataclass(frozen=True, slots=True)
class MetricsMessage:
    """The controller's metrics in Prometheus text exposition format.

    ``text`` is the full multi-line exposition (newlines survive JSON
    encoding); ``format`` names the dialect so future formats can be
    negotiated without a new message type."""

    text: str
    format: str = "prometheus"

    type: str = "metrics"


@dataclass(frozen=True, slots=True)
class ResilienceMessage:
    """Client-side fault counters, pushed opportunistically.

    Counters are *cumulative per client*: the controller keeps the latest
    report per client id and sums across clients, so re-reports after a
    reconnect never double count."""

    client_id: int
    n_retries: int = 0
    n_fallbacks: int = 0
    n_reconnects: int = 0
    n_timeouts: int = 0

    type: str = "resilience"


@dataclass(frozen=True, slots=True)
class ByeMessage:
    """Client sign-off; the controller closes the connection."""

    client_id: int

    type: str = "bye"


Message = Union[
    HelloMessage,
    MeasurementMessage,
    RequestMessage,
    AssignMessage,
    StatsRequestMessage,
    StatsMessage,
    MetricsRequestMessage,
    MetricsMessage,
    ResilienceMessage,
    ByeMessage,
]

_MESSAGE_TYPES: dict[str, type] = {
    "hello": HelloMessage,
    "measurement": MeasurementMessage,
    "request": RequestMessage,
    "assign": AssignMessage,
    "stats_request": StatsRequestMessage,
    "stats": StatsMessage,
    "metrics_request": MetricsRequestMessage,
    "metrics": MetricsMessage,
    "resilience": ResilienceMessage,
    "bye": ByeMessage,
}


def encode_message(message: Message) -> bytes:
    """Serialise a message to one newline-terminated JSON line."""
    payload = asdict(message)
    line = json.dumps(payload, separators=(",", ":")) + "\n"
    encoded = line.encode("utf-8")
    if len(encoded) > MAX_LINE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
    return encoded


def decode_message(line: bytes | str) -> Message:
    """Parse one wire line into its message dataclass."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
        line = line.decode("utf-8", errors="strict")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"not valid JSON: {line[:80]!r}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(f"expected a JSON object: {line[:80]!r}")
    msg_type = payload.pop("type", None)
    cls = _MESSAGE_TYPES.get(msg_type)
    if cls is None:
        raise ProtocolError(f"unknown message type: {msg_type!r}")
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ProtocolError(f"bad fields for {msg_type!r}: {exc}") from exc
