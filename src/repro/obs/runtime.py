"""The one global observability switch.

Instrumentation in hot paths (``ViaPolicy.assign``, the replay loop) costs
one attribute check per call when off -- the acceptance bar is <= 5 %
overhead on the replay benchmarks with observability *disabled*, so the
check must be as close to free as Python allows.  Controller-side message
counters are *not* gated on this switch: they replace the pre-existing
operational counters and must stay exact for the stats endpoint.

Usage::

    from repro.obs import runtime

    runtime.enable()
    ...            # spans recorded, histograms fed
    runtime.disable()

or scoped::

    with runtime.enabled_scope():
        replay(world, trace, policy)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["enabled", "enable", "disable", "enabled_scope"]

#: Read directly from hot paths (``runtime.enabled``); mutate only through
#: :func:`enable` / :func:`disable` so the intent is greppable.
enabled: bool = False


def enable() -> None:
    """Turn span tracing and gated metric observation on, process-wide."""
    global enabled
    enabled = True


def disable() -> None:
    """Turn gated observability off (the default)."""
    global enabled
    enabled = False


@contextmanager
def enabled_scope(on: bool = True) -> Iterator[None]:
    """Temporarily force the switch to ``on``, restoring the prior state."""
    global enabled
    previous = enabled
    enabled = on
    try:
        yield
    finally:
        enabled = previous
