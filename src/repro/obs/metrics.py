"""Dependency-free metrics: counters, gauges, histograms with label sets.

A tiny, stdlib-only subset of the Prometheus client model, built for the
controller's operational counters and the policy's latency histograms:

* a :class:`MetricsRegistry` owns named metrics; registration is
  idempotent (re-asking for the same name/type/labels returns the same
  instrument, so module-level wiring is safe under repeated imports),
* each metric fans out into *series* keyed by label values
  (``metric.labels(type="request").inc()``), with a cardinality cap: once
  a metric holds :data:`DEFAULT_MAX_SERIES` series, further *new* label
  combinations are absorbed into a shared overflow series (writes keep
  working, memory stays bounded) and counted on
  ``via_metrics_dropped_series_total`` -- a runaway label value must not
  crash a long-running controller, but it must page someone,
* :meth:`MetricsRegistry.render_text` emits the Prometheus text
  exposition format (the thing a scraper reads), and
  :meth:`MetricsRegistry.snapshot` returns plain nested dicts for
  programmatic assertions.

No locks: all mutators are single-bytecode-ish updates that are safe
under the GIL for the asyncio + replay workloads this repo runs.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Histogram buckets sized for Python-level call latencies: the assign hot
#: path sits in the tens-of-microseconds range, controller round-trips in
#: milliseconds, chaos-mode fallbacks in the 0.1-10 s tail.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
    2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Per-metric cap on distinct label-value combinations.
DEFAULT_MAX_SERIES = 1000


def _format_value(value: float) -> str:
    """Float formatting for the exposition text: integral values render
    without a fractional part so golden tests stay readable."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return _format_value(bound) if bound == int(bound) else f"{bound:g}"


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _render_labels(labelnames: tuple[str, ...], labelvalues: tuple[str, ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = list(zip(labelnames, labelvalues)) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


class _Series:
    """One (metric, label values) time series holding a scalar value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class _CounterSeries(_Series):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount


class _GaugeSeries(_Series):
    __slots__ = ()

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramSeries:
    """Bucketed distribution; counts are stored per-bucket and rendered
    cumulatively (the Prometheus ``le`` convention)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> list[int]:
        """Counts for ``le <= bucket[i]`` per bucket, then the +Inf total."""
        total = 0
        out = []
        for c in self.counts:
            total += c
            out.append(total)
        return out


class _Metric:
    """Base: name, help text, and the labels -> series fan-out."""

    type_name = "untyped"
    _series_cls: type = _Series

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        *,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self.max_series = max_series
        self._series: dict[tuple[str, ...], Any] = {}
        #: New label combinations rejected at the cardinality cap.
        self.n_dropped = 0
        #: Shared sink for writes past the cap (never rendered/snapshotted:
        #: its labels are unknowable, and exposing a lie is worse than
        #: exposing nothing).
        self._overflow: Any = None
        #: Registry hook: called with the metric name on every drop.
        self.on_drop = None

    # -- label handling -------------------------------------------------

    def labels(self, **labelvalues: Any):
        """The series for this combination of label values (created lazily).

        At the cardinality cap, *new* combinations get a shared overflow
        series instead: their writes are absorbed (bounded memory, no
        exception on a hot path) and ``n_dropped`` / the registry's
        ``via_metrics_dropped_series_total`` counter record the loss.
        Existing series keep working forever.
        """
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.max_series:
                self.n_dropped += 1
                if self.on_drop is not None:
                    self.on_drop(self.name)
                if self._overflow is None:
                    self._overflow = self._new_series()
                return self._overflow
            series = self._new_series()
            self._series[key] = series
        return series

    def _default_series(self):
        if self.labelnames:
            raise ValueError(f"{self.name} is labelled; use .labels(...)")
        series = self._series.get(())
        if series is None:
            series = self._new_series()
            self._series[()] = series
        return series

    def _new_series(self):
        return self._series_cls()

    @property
    def n_series(self) -> int:
        return len(self._series)

    def clear(self) -> None:
        """Drop every series (used by registry reset between runs)."""
        self._series.clear()
        self._overflow = None
        self.n_dropped = 0

    # -- export ---------------------------------------------------------

    def _sorted_series(self) -> list[tuple[tuple[str, ...], Any]]:
        return sorted(self._series.items())

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "help": self.help,
            "series": [
                {"labels": dict(zip(self.labelnames, key)), "value": s.value}
                for key, s in self._sorted_series()
            ],
        }

    def render_lines(self) -> Iterable[str]:
        yield f"# HELP {self.name} {self.help}"
        yield f"# TYPE {self.name} {self.type_name}"
        for key, series in self._sorted_series():
            yield (
                f"{self.name}{_render_labels(self.labelnames, key)} "
                f"{_format_value(series.value)}"
            )


class Counter(_Metric):
    """Monotonically increasing count (events, messages, errors)."""

    type_name = "counter"
    _series_cls = _CounterSeries

    def inc(self, amount: float = 1.0) -> None:
        self._default_series().inc(amount)

    @property
    def value(self) -> float:
        """Sum over every series (the unlabelled value when unlabelled)."""
        return sum(s.value for s in self._series.values())

    def value_for(self, **labelvalues: Any) -> float:
        return self.labels(**labelvalues).value


class Gauge(_Metric):
    """A value that goes up and down (live clients, replay progress)."""

    type_name = "gauge"
    _series_cls = _GaugeSeries

    def set(self, value: float) -> None:
        self._default_series().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_series().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_series().dec(amount)

    @property
    def value(self) -> float:
        series = self._series.get(())
        return series.value if series is not None else 0.0

    def value_for(self, **labelvalues: Any) -> float:
        return self.labels(**labelvalues).value


class Histogram(_Metric):
    """Bucketed latency/size distribution with sum and count."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        *,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        max_series: int = DEFAULT_MAX_SERIES,
    ) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ValueError("buckets must be non-empty, sorted and unique")
        super().__init__(name, help, labelnames, max_series=max_series)
        self.buckets = tuple(float(b) for b in buckets)

    def _new_series(self) -> _HistogramSeries:
        return _HistogramSeries(self.buckets)

    def observe(self, value: float) -> None:
        self._default_series().observe(value)

    def series_for(self, **labelvalues: Any) -> _HistogramSeries:
        return self.labels(**labelvalues)

    @property
    def count(self) -> int:
        return sum(s.count for s in self._series.values())

    @property
    def sum(self) -> float:
        return sum(s.sum for s in self._series.values())

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": self.type_name,
            "help": self.help,
            "series": [
                {
                    "labels": dict(zip(self.labelnames, key)),
                    "buckets": dict(
                        zip(
                            [_format_le(b) for b in (*self.buckets, float("inf"))],
                            s.cumulative_counts(),
                        )
                    ),
                    "sum": s.sum,
                    "count": s.count,
                }
                for key, s in self._sorted_series()
            ],
        }

    def render_lines(self) -> Iterable[str]:
        yield f"# HELP {self.name} {self.help}"
        yield f"# TYPE {self.name} {self.type_name}"
        bounds = (*self.buckets, float("inf"))
        for key, series in self._sorted_series():
            for bound, cum in zip(bounds, series.cumulative_counts()):
                labels = _render_labels(
                    self.labelnames, key, extra=(("le", _format_le(bound)),)
                )
                yield f"{self.name}_bucket{labels} {cum}"
            plain = _render_labels(self.labelnames, key)
            yield f"{self.name}_sum{plain} {_format_value(series.sum)}"
            yield f"{self.name}_count{plain} {series.count}"


class MetricsRegistry:
    """Named metrics with idempotent registration and text exposition."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    # -- registration ---------------------------------------------------

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, tuple(labelnames))

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, tuple(labelnames))

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        *,
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help, tuple(labelnames), buckets=buckets)
            metric.on_drop = self._record_drop
            self._metrics[name] = metric
            return metric
        self._check_match(metric, Histogram, name, tuple(labelnames))
        assert isinstance(metric, Histogram)
        if metric.buckets != tuple(float(b) for b in buckets):
            raise ValueError(f"{name} already registered with different buckets")
        return metric

    def _get_or_create(
        self, cls: type, name: str, help: str, labelnames: tuple[str, ...]
    ):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, labelnames)
            metric.on_drop = self._record_drop
            self._metrics[name] = metric
            return metric
        self._check_match(metric, cls, name, labelnames)
        return metric

    @staticmethod
    def _check_match(
        metric: _Metric, cls: type, name: str, labelnames: tuple[str, ...]
    ) -> None:
        if type(metric) is not cls:
            raise ValueError(
                f"{name} already registered as {metric.type_name}, "
                f"not {cls.type_name}"  # type: ignore[attr-defined]
            )
        if metric.labelnames != labelnames:
            raise ValueError(
                f"{name} already registered with labels {metric.labelnames}, "
                f"not {labelnames}"
            )

    def _record_drop(self, metric_name: str) -> None:
        """Count one series dropped at a metric's cardinality cap.

        The drop counter is itself labelled by metric name -- bounded by
        the number of registered metrics, never by label churn -- and is
        excluded from its own accounting so a full drop counter cannot
        recurse.
        """
        if metric_name == "via_metrics_dropped_series_total":
            return
        self.counter(
            "via_metrics_dropped_series_total",
            "Label series rejected at a metric's cardinality cap, by metric.",
            ("metric",),
        ).labels(metric=metric_name).inc()

    # -- access ---------------------------------------------------------

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    @property
    def total_series(self) -> int:
        """Live label series across every metric (the soak watchdog's
        cardinality trend line)."""
        return sum(m.n_series for m in self._metrics.values())

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def reset(self) -> None:
        """Zero every metric (registrations survive; series are dropped)."""
        for metric in self._metrics.values():
            metric.clear()

    # -- export ---------------------------------------------------------

    def snapshot(self) -> dict[str, Mapping[str, Any]]:
        """Plain nested dicts, for assertions and JSON dumps."""
        return {name: m.snapshot() for name, m in sorted(self._metrics.items())}

    def render_text(self) -> str:
        """The Prometheus text exposition format (trailing newline incl.)."""
        lines: list[str] = []
        for _name, metric in sorted(self._metrics.items()):
            lines.extend(metric.render_lines())
        return "\n".join(lines) + ("\n" if lines else "")


#: Process-wide default registry: the policy, replay loop and client-side
#: resilience events all land here.  Controllers use their own registry so
#: concurrent controllers never mix counters.
REGISTRY = MetricsRegistry()
