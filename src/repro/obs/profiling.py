"""Profiling hooks: ``@timed`` histogram feeds and a cProfile harness.

``@timed`` is the low-ceremony instrument for functions that matter but do
not deserve hand-written spans: it feeds a latency histogram on the
default registry, keyed by a stable name, and costs a single flag check
when observability is disabled::

    @timed("predictor.predict_all")
    def predict_all(self, ...):
        ...

``profiled`` wraps a code region in :mod:`cProfile` for the benchmarks --
the registry tells you *that* a stage is slow, the profile tells you
*why*.  Benchmarks can opt in without code changes by exporting
``REPRO_PROFILE=1`` and calling :func:`maybe_profiled` (see
``benchmarks/_util.py``).
"""

from __future__ import annotations

import cProfile
import os
import pstats
from contextlib import contextmanager, nullcontext
from functools import wraps
from time import perf_counter
from typing import Any, Callable, Iterator, TypeVar

from repro.obs import runtime
from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = ["timed", "profiled", "maybe_profiled", "PROFILE_ENV_VAR"]

F = TypeVar("F", bound=Callable[..., Any])

#: Set to a truthy value to turn :func:`maybe_profiled` regions on.
PROFILE_ENV_VAR = "REPRO_PROFILE"


def timed(
    name: str, *, registry: MetricsRegistry | None = None
) -> Callable[[F], F]:
    """Decorate a callable to feed ``via_timed_seconds{func=name}``.

    The histogram is registered at decoration time (so it shows up in
    scrapes even before the first call); observation only happens while
    :mod:`repro.obs.runtime` is enabled.
    """
    histogram = (registry or REGISTRY).histogram(
        "via_timed_seconds",
        "Wall time of @timed functions, by function name.",
        ("func",),
    )

    def decorate(fn: F) -> F:
        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not runtime.enabled:
                return fn(*args, **kwargs)
            t0 = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                histogram.labels(func=name).observe(perf_counter() - t0)

        return wrapper  # type: ignore[return-value]

    return decorate


@contextmanager
def profiled(
    *,
    sort: str = "cumulative",
    top: int = 25,
    print_to: Any | None = None,
) -> Iterator[cProfile.Profile]:
    """Run the enclosed block under :mod:`cProfile`.

    Yields the live profiler; on exit, a ``pstats`` summary (top ``top``
    entries by ``sort``) is written to ``print_to`` (default: stdout).
    Pass ``print_to=io.StringIO()`` to capture instead of print.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        if print_to is not None:
            stats = pstats.Stats(profiler, stream=print_to)
        else:
            stats = pstats.Stats(profiler)  # pstats defaults to stdout
        stats.sort_stats(sort).print_stats(top)


def maybe_profiled(label: str = ""):
    """``profiled()`` when ``REPRO_PROFILE`` is set, else a null context.

    The benchmark harness wraps each experiment body in this, so any
    bench can be profiled ad hoc::

        REPRO_PROFILE=1 pytest benchmarks/bench_fig12_via_improvement.py --benchmark-only
    """
    if os.environ.get(PROFILE_ENV_VAR, "").strip() not in ("", "0", "false"):
        if label:
            print(f"\n--- cProfile: {label} ---")
        return profiled()
    return nullcontext()
