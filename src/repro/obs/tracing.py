"""Call-path tracing: nested wall-time spans with a ring-buffer exporter.

The controller's decisions are cheap individually but layered (predict ->
prune -> bandit inside every assign); a logging profiler would swamp the
signal.  Instead, hot paths open *spans*::

    with trace("assign", metric="rtt_ms") as span:
        with trace("predict"):
            ...
        span.tag(choice=str(option))

Each finished span records its wall time, depth and parent, lands in a
bounded ring buffer (old spans fall off; tracing never grows memory), and
feeds a ``via_span_duration_seconds`` histogram on the default registry so
scrapes see per-stage latency distributions without reading the buffer.

When :mod:`repro.obs.runtime` is disabled, :func:`trace` returns a shared
no-op span -- one flag check and no allocation, which is what keeps the
disabled-path overhead inside the <= 5 % benchmark budget.

Nesting is tracked per asyncio task / thread via :mod:`contextvars`, so
concurrent controller connections cannot corrupt each other's stacks.
"""

from __future__ import annotations

from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from repro.obs import runtime
from repro.obs.metrics import REGISTRY, Histogram

__all__ = ["Span", "Tracer", "TRACER", "trace"]

#: Buckets for the span-duration histogram: spans range from ~10 us
#: (a cached bandit pick) to seconds (a full refresh over dense history).
_SPAN_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


@dataclass(slots=True)
class Span:
    """One timed region of the call path."""

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    tags: dict[str, Any] = field(default_factory=dict)
    start_s: float = 0.0
    duration_s: float = 0.0

    def tag(self, **tags: Any) -> "Span":
        """Attach key=value annotations to the span (chainable)."""
        self.tags.update(tags)
        return self


class _NoopSpan:
    """Returned by :func:`trace` when observability is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def tag(self, **tags: Any) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()

#: The stack of *active* spans for the current task/thread.
_ACTIVE: ContextVar[tuple[Span, ...]] = ContextVar("repro_obs_spans", default=())


class _SpanContext:
    """Context manager pushing/popping one span around a code region."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._token = None

    def __enter__(self) -> Span:
        self._token = _ACTIVE.set(_ACTIVE.get() + (self._span,))
        self._span.start_s = perf_counter()
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        span = self._span
        span.duration_s = perf_counter() - span.start_s
        if self._token is not None:
            _ACTIVE.reset(self._token)
        self._tracer._finish(span)


class Tracer:
    """Ring buffer of finished spans plus the histogram feed."""

    def __init__(self, capacity: int = 4096, *, feed_histogram: bool = True) -> None:
        self._ring: deque[Span] = deque(maxlen=capacity)
        self._next_id = 1
        self.n_finished = 0
        self._histogram: Histogram | None = None
        if feed_histogram:
            self._histogram = REGISTRY.histogram(
                "via_span_duration_seconds",
                "Wall time of traced call-path spans, by span name.",
                ("span",),
                buckets=_SPAN_BUCKETS,
            )

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    def span(self, name: str, **tags: Any) -> _SpanContext:
        """An active span nested under the caller's current span (if any)."""
        stack = _ACTIVE.get()
        parent = stack[-1] if stack else None
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(stack),
            tags=dict(tags) if tags else {},
        )
        self._next_id += 1
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        self._ring.append(span)
        self.n_finished += 1
        if self._histogram is not None:
            self._histogram.labels(span=span.name).observe(span.duration_s)

    # -- export ---------------------------------------------------------

    def finished(self) -> list[Span]:
        """Finished spans, oldest first (children precede their parents)."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    def render_text(self, limit: int = 40) -> str:
        """A human-readable tail of the buffer, indented by nesting depth.

        Spans finish child-first; rendering walks the tail in finish order
        so a parent line appears after its children, each line showing
        name, wall time and tags.
        """
        spans = self.finished()[-limit:]
        lines = []
        for span in spans:
            tags = " ".join(f"{k}={v}" for k, v in span.tags.items())
            lines.append(
                f"{'  ' * span.depth}{span.name}  {span.duration_s * 1e3:.3f} ms"
                + (f"  [{tags}]" if tags else "")
            )
        return "\n".join(lines)


#: Process-wide tracer used by :func:`trace`.
TRACER = Tracer()


def trace(name: str, **tags: Any):
    """Open a span on the global tracer; a shared no-op when disabled."""
    if not runtime.enabled:
        return _NOOP_SPAN
    return TRACER.span(name, **tags)
