"""Observability plane: metrics registry, call-path tracing, profiling.

The paper operates VIA as a measured production service -- PCR deltas and
99th-percentile setup latencies (§7) presuppose continuous
instrumentation.  This package is the reproduction's equivalent, and it is
deliberately dependency-free (stdlib only):

* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry` with
  Counter/Gauge/Histogram instruments, label sets, snapshots and the
  Prometheus text exposition format,
* :mod:`repro.obs.tracing` -- nested wall-time spans
  (``with trace("assign"): ...``) exported through a bounded ring buffer,
* :mod:`repro.obs.profiling` -- the ``@timed`` histogram decorator and a
  cProfile harness for benchmarks,
* :mod:`repro.obs.runtime` -- the global enable/disable switch; everything
  gated on it costs one flag check when off.

Quickstart::

    from repro import obs

    obs.enable()
    result = replay(world, trace, policy)        # spans + histograms fill in
    print(obs.REGISTRY.render_text())            # Prometheus exposition
    print(obs.TRACER.render_text(limit=20))      # recent span tree
    obs.disable()

See ``docs/observability.md`` for metric names, label conventions and the
controller scrape protocol.
"""

from repro.obs import runtime
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    DEFAULT_LATENCY_BUCKETS,
)
from repro.obs.profiling import maybe_profiled, profiled, timed
from repro.obs.runtime import disable, enable, enabled_scope
from repro.obs.tracing import Span, TRACER, Tracer, trace

__all__ = [
    "runtime",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "Span",
    "Tracer",
    "TRACER",
    "trace",
    "timed",
    "profiled",
    "maybe_profiled",
    "enable",
    "disable",
    "enabled_scope",
]
