"""Client-side decision caching: the §3.1 / §7 controller-scalability lever.

The paper notes that clients could "cache the relaying decisions and
refresh periodically" to avoid overloading the controller, and that the
per-call overhead is one measurement upload plus one control exchange.
:class:`CachedAssignmentPolicy` implements the control-plane half: each
(pair) caches the controller's last decision for a TTL, so only cache
misses reach the wrapped policy.  Measurement uploads still happen for
every call (they feed learning).

The trade-off this exposes -- controller queries saved vs staleness cost
-- is measured in ``benchmarks/bench_ext_decision_cache.py``.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.keys import PairKeyer
from repro.core.policy import SelectionPolicy
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import RelayOption
from repro.telephony.call import Call

__all__ = ["CachedAssignmentPolicy"]


class CachedAssignmentPolicy:
    """Wraps any policy with a per-pair decision cache.

    ``ttl_hours`` is how long a cached decision stays valid; 0 disables
    caching (every call queries the wrapped policy).  Cached options are
    stored in canonical pair orientation so both call directions share
    one entry, mirroring how a client-side cache keyed on the peer would
    behave under the controller's symmetric view.
    """

    def __init__(
        self,
        inner: SelectionPolicy,
        *,
        ttl_hours: float = 1.0,
        granularity: str = "as",
    ) -> None:
        if ttl_hours < 0.0:
            raise ValueError(f"ttl_hours must be >= 0: {ttl_hours}")
        self.inner = inner
        self.ttl_hours = ttl_hours
        self.name = f"cached[{inner.name}, ttl={ttl_hours:g}h]"
        self._keyer = PairKeyer(granularity)  # type: ignore[arg-type]
        self._cache: dict[Hashable, tuple[float, RelayOption]] = {}
        self.n_calls = 0
        self.n_controller_queries = 0

    @property
    def query_fraction(self) -> float:
        """Fraction of calls that actually reached the controller."""
        if self.n_calls == 0:
            return 0.0
        return self.n_controller_queries / self.n_calls

    def assign(self, call: Call, options: list[RelayOption]) -> RelayOption:
        self.n_calls += 1
        view = self._keyer.view(call)
        if self.ttl_hours > 0.0:
            entry = self._cache.get(view.pair_key)
            if entry is not None:
                expiry, cached_option = entry
                if call.t_hours < expiry:
                    candidate = view.denormalize(cached_option)
                    # A stale option may no longer be offered (e.g. relay
                    # decommissioned); fall through to a fresh query then.
                    if candidate in options:
                        return candidate
        self.n_controller_queries += 1
        choice = self.inner.assign(call, options)
        if self.ttl_hours > 0.0:
            self._cache[view.pair_key] = (
                call.t_hours + self.ttl_hours,
                view.normalize(choice),
            )
        return choice

    def observe(self, call: Call, option: RelayOption, metrics: PathMetrics) -> None:
        # Measurement uploads are not cached: every call feeds learning.
        self.inner.observe(call, option, metrics)

    def invalidate(self) -> None:
        """Drop all cached decisions (e.g. on a controller push)."""
        self._cache.clear()
