"""Client-side decision caching: the §3.1 / §7 controller-scalability lever.

The paper notes that clients could "cache the relaying decisions and
refresh periodically" to avoid overloading the controller, and that the
per-call overhead is one measurement upload plus one control exchange.
:class:`CachedAssignmentPolicy` implements the control-plane half: each
(pair) caches the controller's last decision for a TTL, so only cache
misses reach the wrapped policy.  Measurement uploads still happen for
every call (they feed learning).

The trade-off this exposes -- controller queries saved vs staleness cost
-- is measured in ``benchmarks/bench_ext_decision_cache.py``.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.keys import PairKeyer
from repro.core.policy import SelectionPolicy
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import RelayOption
from repro.telephony.call import Call

__all__ = ["CachedAssignmentPolicy"]


class CachedAssignmentPolicy:
    """Wraps any policy with a per-pair decision cache.

    ``ttl_hours`` is how long a cached decision stays valid; 0 disables
    caching (every call queries the wrapped policy).  Cached options are
    stored in canonical pair orientation so both call directions share
    one entry, mirroring how a client-side cache keyed on the peer would
    behave under the controller's symmetric view.

    Expired entries are deleted as soon as they are seen, and the cache is
    bounded by ``max_entries``: at the cap, inserting first sweeps expired
    entries, then drops the soonest-to-expire live entry.  Without the
    bound a long replay touching many pairs grows the dict without limit.
    """

    def __init__(
        self,
        inner: SelectionPolicy,
        *,
        ttl_hours: float = 1.0,
        granularity: str = "as",
        max_entries: int | None = None,
    ) -> None:
        if ttl_hours < 0.0:
            raise ValueError(f"ttl_hours must be >= 0: {ttl_hours}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1: {max_entries}")
        self.inner = inner
        self.ttl_hours = ttl_hours
        self.max_entries = max_entries
        self.name = f"cached[{inner.name}, ttl={ttl_hours:g}h]"
        self._keyer = PairKeyer(granularity)  # type: ignore[arg-type]
        self._cache: dict[Hashable, tuple[float, RelayOption]] = {}
        self.n_calls = 0
        self.n_controller_queries = 0
        self.n_evicted = 0

    @property
    def query_fraction(self) -> float:
        """Fraction of calls that actually reached the controller."""
        if self.n_calls == 0:
            return 0.0
        return self.n_controller_queries / self.n_calls

    def assign(self, call: Call, options: list[RelayOption]) -> RelayOption:
        self.n_calls += 1
        view = self._keyer.view(call)
        if self.ttl_hours > 0.0:
            entry = self._cache.get(view.pair_key)
            if entry is not None:
                expiry, cached_option = entry
                if call.t_hours < expiry:
                    candidate = view.denormalize(cached_option)
                    # A stale option may no longer be offered (e.g. relay
                    # decommissioned); fall through to a fresh query then.
                    if candidate in options:
                        return candidate
                else:
                    # Expired: free the slot now rather than keeping dead
                    # entries alive for the rest of a long replay.
                    del self._cache[view.pair_key]
                    self.n_evicted += 1
        self.n_controller_queries += 1
        choice = self.inner.assign(call, options)
        if self.ttl_hours > 0.0:
            if (
                self.max_entries is not None
                and view.pair_key not in self._cache
                and len(self._cache) >= self.max_entries
            ):
                self._make_room(call.t_hours)
            self._cache[view.pair_key] = (
                call.t_hours + self.ttl_hours,
                view.normalize(choice),
            )
        return choice

    def _make_room(self, now_hours: float) -> None:
        """Free at least one slot: sweep expired, else drop soonest expiry."""
        if self.evict_expired(now_hours) > 0:
            return
        victim = min(self._cache, key=lambda key: self._cache[key][0])
        del self._cache[victim]
        self.n_evicted += 1

    def evict_expired(self, now_hours: float) -> int:
        """Drop every entry already expired at ``now_hours``; returns count.

        Suitable for periodic sweeps between calls; ``assign`` also evicts
        lazily whenever it hits an expired entry.
        """
        stale = [
            key for key, (expiry, _) in self._cache.items() if expiry <= now_hours
        ]
        for key in stale:
            del self._cache[key]
        self.n_evicted += len(stale)
        return len(stale)

    def __len__(self) -> int:
        """Number of cached decisions currently held (incl. expired)."""
        return len(self._cache)

    def observe(self, call: Call, option: RelayOption, metrics: PathMetrics) -> None:
        # Measurement uploads are not cached: every call feeds learning.
        self.inner.observe(call, option, metrics)

    def invalidate(self) -> None:
        """Drop all cached decisions (e.g. on a controller push)."""
        self._cache.clear()
