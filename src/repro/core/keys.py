"""Spatial keying: at what granularity does the controller aggregate?

The paper aggregates at the AS-pair level by default and studies coarser
(country) and finer (IP prefix) granularities in Figure 17a.  A
:class:`PairKeyer` maps a call to a canonical unordered pair key plus a
``flipped`` flag.  Because path performance in the world (and on the real
Internet, to first order) is direction-symmetric, pooling both directions
of a pair doubles data density; the flag lets transit options be stored in
a canonical orientation and mapped back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Literal

from repro.netmodel.options import RelayOption
from repro.telephony.call import Call

__all__ = ["Granularity", "PairView", "PairKeyer"]

Granularity = Literal["country", "as", "prefix"]

#: All granularities, coarse to fine (the x-axis of Figure 17a).
GRANULARITIES: tuple[Granularity, ...] = ("country", "as", "prefix")


@dataclass(frozen=True, slots=True)
class PairView:
    """A call's canonical pair key and orientation.

    ``flipped`` is True when the call's source sorts *after* its
    destination under the granularity's key ordering; transit options must
    then be reversed before storage and after retrieval.
    """

    pair_key: tuple[Hashable, Hashable]
    flipped: bool

    def normalize(self, option: RelayOption) -> RelayOption:
        """Store-orientation of ``option`` for this call."""
        return option.reversed() if self.flipped else option

    def denormalize(self, option: RelayOption) -> RelayOption:
        """Call-orientation of a stored ``option``."""
        return option.reversed() if self.flipped else option


class PairKeyer:
    """Maps calls to pair keys at a chosen spatial granularity."""

    def __init__(self, granularity: Granularity = "as") -> None:
        if granularity not in GRANULARITIES:
            raise ValueError(
                f"unknown granularity {granularity!r}; expected one of {GRANULARITIES}"
            )
        self.granularity: Granularity = granularity

    def side_keys(self, call: Call) -> tuple[Hashable, Hashable]:
        """(source key, destination key) for one call."""
        if self.granularity == "country":
            return (call.src_country, call.dst_country)
        if self.granularity == "as":
            return (call.src_asn, call.dst_asn)
        return ((call.src_asn, call.src_prefix), (call.dst_asn, call.dst_prefix))

    def view(self, call: Call) -> PairView:
        """Canonical pair view for one call."""
        src_key, dst_key = self.side_keys(call)
        if self._sorts_after(src_key, dst_key):
            return PairView(pair_key=(dst_key, src_key), flipped=True)
        return PairView(pair_key=(src_key, dst_key), flipped=False)

    @staticmethod
    def _sorts_after(a: Hashable, b: Hashable) -> bool:
        # Keys within one granularity are homogeneous (str, int, or
        # (int, int) tuples), so direct comparison is well-defined.
        return a > b  # type: ignore[operator]

    def __repr__(self) -> str:
        return f"PairKeyer(granularity={self.granularity!r})"
