"""Call-history store: stage 1 of the VIA pipeline (Figure 10).

Clients push their per-call network metrics to the controller; the
controller aggregates them per (pair key, relaying option, time window).
The store keeps Welford running statistics per metric, so mean and
standard-error-of-mean queries are O(1) and numerically stable.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterator

import numpy as np

from repro.netmodel.metrics import METRICS, PathMetrics
from repro.netmodel.options import RelayOption

__all__ = [
    "RunningStat",
    "CallHistory",
    "history_to_dict",
    "history_from_dict",
    "option_to_dict",
    "option_from_dict",
]

_N_METRICS = len(METRICS)


class RunningStat:
    """Welford running mean/variance for the three metrics at once."""

    __slots__ = ("count", "_mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self._mean = np.zeros(_N_METRICS)
        self._m2 = np.zeros(_N_METRICS)

    def push(self, metrics: PathMetrics) -> None:
        """Fold one call's (rtt, loss, jitter) into the aggregate."""
        values = (metrics.rtt_ms, metrics.loss_rate, metrics.jitter_ms)
        self.count += 1
        for i in range(_N_METRICS):
            delta = values[i] - self._mean[i]
            self._mean[i] += delta / self.count
            self._m2[i] += delta * (values[i] - self._mean[i])

    @property
    def mean(self) -> np.ndarray:
        """Per-metric sample mean, as a length-3 array (rtt, loss, jitter)."""
        return self._mean.copy()

    def variance(self) -> np.ndarray:
        """Per-metric sample variance (ddof=1); zeros below two samples."""
        if self.count < 2:
            return np.zeros(_N_METRICS)
        return self._m2 / (self.count - 1)

    def sem(self) -> np.ndarray:
        """Per-metric standard error of the mean; zeros below two samples."""
        if self.count < 2:
            return np.zeros(_N_METRICS)
        return np.sqrt(self.variance() / self.count)

    def mean_metrics(self) -> PathMetrics:
        """The mean triple as a :class:`PathMetrics` value."""
        return PathMetrics(
            rtt_ms=float(self._mean[0]),
            loss_rate=float(min(1.0, max(0.0, self._mean[1]))),
            jitter_ms=float(self._mean[2]),
        )

    def __repr__(self) -> str:
        return f"RunningStat(count={self.count}, mean={np.round(self._mean, 4)})"


PairKey = Hashable
HistoryKey = tuple[PairKey, RelayOption]


class CallHistory:
    """Windowed (pair, option) -> RunningStat store.

    ``window_hours`` matches the controller's refresh period T (24 h by
    default, §4.3).  Old windows can be pruned to bound memory in long
    replays; the predictor only ever reads the immediately preceding
    window.
    """

    def __init__(self, window_hours: float = 24.0) -> None:
        if window_hours <= 0.0:
            raise ValueError(f"window_hours must be > 0: {window_hours}")
        self.window_hours = window_hours
        self._windows: dict[int, dict[HistoryKey, RunningStat]] = {}

    def window_of(self, t_hours: float) -> int:
        """The window index containing absolute time ``t_hours``."""
        if t_hours < 0.0:
            raise ValueError(f"t_hours must be >= 0: {t_hours}")
        return int(t_hours // self.window_hours)

    def add(
        self,
        pair_key: PairKey,
        option: RelayOption,
        t_hours: float,
        metrics: PathMetrics,
    ) -> None:
        """Record one completed call's measured performance."""
        window = self.window_of(t_hours)
        bucket = self._windows.setdefault(window, {})
        stat = bucket.get((pair_key, option))
        if stat is None:
            stat = RunningStat()
            bucket[(pair_key, option)] = stat
        stat.push(metrics)

    def stats(
        self, pair_key: PairKey, option: RelayOption, window: int
    ) -> RunningStat | None:
        """The aggregate for one (pair, option) in one window, if any."""
        bucket = self._windows.get(window)
        if bucket is None:
            return None
        return bucket.get((pair_key, option))

    def window_items(self, window: int) -> Iterator[tuple[HistoryKey, RunningStat]]:
        """All (pair, option) aggregates recorded in one window."""
        bucket = self._windows.get(window)
        if bucket is None:
            return iter(())
        return iter(bucket.items())

    def pair_options(self, pair_key: PairKey, window: int) -> list[RelayOption]:
        """Options with any samples for ``pair_key`` in ``window``."""
        bucket = self._windows.get(window)
        if bucket is None:
            return []
        return [opt for (key, opt) in bucket if key == pair_key]

    def windows(self) -> list[int]:
        """Window indices with any data, ascending."""
        return sorted(self._windows)

    def prune_before(self, window: int) -> int:
        """Drop windows older than ``window``; returns how many were dropped."""
        stale = [w for w in self._windows if w < window]
        for w in stale:
            del self._windows[w]
        return len(stale)

    def total_calls(self) -> int:
        """Total number of calls folded into the store."""
        return sum(
            stat.count for bucket in self._windows.values() for stat in bucket.values()
        )

    def __contains__(self, window: int) -> bool:
        if not isinstance(window, int):
            raise TypeError("membership test expects a window index")
        return window in self._windows


def sem_floor(mean: float, relative: float = 0.05, absolute: float = 1e-6) -> float:
    """A lower bound on SEM used to avoid overconfident zero-variance
    predictions from tiny samples."""
    return max(absolute, relative * abs(mean))


def confidence_bounds(mean: float, sem: float, z: float = 1.96) -> tuple[float, float]:
    """(lower, upper) 95% confidence bounds used throughout §4.4."""
    if sem < 0.0 or math.isnan(sem):
        raise ValueError(f"sem must be non-negative: {sem}")
    return (mean - z * sem, mean + z * sem)


def option_to_dict(option: RelayOption) -> dict:
    """JSON-safe form of a relaying option (checkpoint serialisation)."""
    return {
        "kind": option.kind.value,
        "ingress": option.ingress,
        "egress": option.egress,
    }


def option_from_dict(data: dict) -> RelayOption:
    """Inverse of :func:`option_to_dict`."""
    from repro.netmodel.options import OptionKind

    return RelayOption(
        kind=OptionKind(data["kind"]), ingress=data["ingress"], egress=data["egress"]
    )


def _encode_key(value):
    """JSON-safe form of a pair-side key (int, str, or (int, int) tuple)."""
    if isinstance(value, tuple):
        return {"t": list(value)}
    return value


def _decode_key(value):
    if isinstance(value, dict) and "t" in value:
        return tuple(value["t"])
    return value


def history_to_dict(history: CallHistory) -> dict:
    """Serialise a :class:`CallHistory` to JSON-compatible primitives.

    Used for controller checkpointing: the learned per-(pair, option,
    window) aggregates are the state worth surviving a restart (bandit and
    pruning state rebuild at the next refresh).
    """
    windows = {}
    for window in history.windows():
        entries = []
        for (pair_key, option), stat in history.window_items(window):
            entries.append(
                {
                    "pair": [_encode_key(pair_key[0]), _encode_key(pair_key[1])],
                    "option": option_to_dict(option),
                    "count": stat.count,
                    "mean": [float(x) for x in stat._mean],
                    "m2": [float(x) for x in stat._m2],
                }
            )
        windows[str(window)] = entries
    return {"window_hours": history.window_hours, "windows": windows}


def history_from_dict(data: dict) -> CallHistory:
    """Rebuild a :class:`CallHistory` from :func:`history_to_dict` output."""
    history = CallHistory(window_hours=float(data["window_hours"]))
    for window_str, entries in data["windows"].items():
        window = int(window_str)
        bucket = history._windows.setdefault(window, {})
        for entry in entries:
            pair_key = (_decode_key(entry["pair"][0]), _decode_key(entry["pair"][1]))
            option = option_from_dict(entry["option"])
            stat = RunningStat()
            stat.count = int(entry["count"])
            stat._mean = np.asarray(entry["mean"], dtype=float)
            stat._m2 = np.asarray(entry["m2"], dtype=float)
            bucket[(pair_key, option)] = stat
    return history
