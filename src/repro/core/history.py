"""Call-history store: stage 1 of the VIA pipeline (Figure 10).

Clients push their per-call network metrics to the controller; the
controller aggregates them per (pair key, relaying option, time window).
The store keeps Welford running statistics per metric, so mean and
standard-error-of-mean queries are O(1) and numerically stable.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterator

import numpy as np

from repro.netmodel.metrics import METRICS, PathMetrics
from repro.netmodel.options import RelayOption

__all__ = [
    "RunningStat",
    "CallHistory",
    "history_to_dict",
    "history_from_dict",
    "option_to_dict",
    "option_from_dict",
]

_N_METRICS = len(METRICS)


class RunningStat:
    """Welford running mean/variance for the three metrics at once."""

    __slots__ = ("count", "_mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self._mean = np.zeros(_N_METRICS)
        self._m2 = np.zeros(_N_METRICS)

    def push(self, metrics: PathMetrics) -> None:
        """Fold one call's (rtt, loss, jitter) into the aggregate."""
        values = (metrics.rtt_ms, metrics.loss_rate, metrics.jitter_ms)
        self.count += 1
        for i in range(_N_METRICS):
            delta = values[i] - self._mean[i]
            self._mean[i] += delta / self.count
            self._m2[i] += delta * (values[i] - self._mean[i])

    def push_many(self, values: np.ndarray) -> None:
        """Fold many (rtt, loss, jitter) rows, bit-identical to ``push``.

        ``values`` is an ``(n, 3)`` array.  Rows are folded **sequentially**
        (the same float operations in the same order as ``n`` scalar
        pushes), not pooled Chan-style: pooling produces ulp-level
        differences that would break the vector path's bit-equivalence
        contract.  The per-row arithmetic runs on unboxed Python floats,
        which follow the same IEEE-754 double semantics as the numpy
        scalar ops in :meth:`push` but fold an order of magnitude faster.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2 or values.shape[1] != _N_METRICS:
            raise ValueError(
                f"push_many expects an (n, {_N_METRICS}) array, got {values.shape}"
            )
        if not len(values):
            return
        count = self.count
        m_r, m_l, m_j = (float(x) for x in self._mean)
        s_r, s_l, s_j = (float(x) for x in self._m2)
        for r, l, j in zip(
            values[:, 0].tolist(), values[:, 1].tolist(), values[:, 2].tolist()
        ):
            count += 1
            d = r - m_r
            m_r += d / count
            s_r += d * (r - m_r)
            d = l - m_l
            m_l += d / count
            s_l += d * (l - m_l)
            d = j - m_j
            m_j += d / count
            s_j += d * (j - m_j)
        self.count = count
        self._mean = np.array([m_r, m_l, m_j])
        self._m2 = np.array([s_r, s_l, s_j])

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Fold ``other``'s aggregate into this one (Chan's parallel Welford).

        After ``a.merge(b)``, ``a`` holds exactly the statistics of the
        union of both sample streams; ``b`` is left untouched.  This is
        the reduce step of sharded replays: workers each build partial
        :class:`RunningStat`\\ s and the coordinator merges them.  Returns
        ``self`` for chaining.
        """
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean.copy()
            self._m2 = other._m2.copy()
            return self
        n1 = self.count
        n2 = other.count
        total = n1 + n2
        delta = other._mean - self._mean
        self._mean = self._mean + delta * (n2 / total)
        self._m2 = self._m2 + other._m2 + delta * delta * (n1 * n2 / total)
        self.count = total
        return self

    @property
    def mean(self) -> np.ndarray:
        """Per-metric sample mean, as a length-3 array (rtt, loss, jitter)."""
        return self._mean.copy()

    def variance(self) -> np.ndarray:
        """Per-metric sample variance (ddof=1); zeros below two samples."""
        if self.count < 2:
            return np.zeros(_N_METRICS)
        return self._m2 / (self.count - 1)

    def sem(self) -> np.ndarray:
        """Per-metric standard error of the mean; zeros below two samples."""
        if self.count < 2:
            return np.zeros(_N_METRICS)
        return np.sqrt(self.variance() / self.count)

    def mean_metrics(self) -> PathMetrics:
        """The mean triple as a :class:`PathMetrics` value."""
        return PathMetrics(
            rtt_ms=float(self._mean[0]),
            loss_rate=float(min(1.0, max(0.0, self._mean[1]))),
            jitter_ms=float(self._mean[2]),
        )

    def __repr__(self) -> str:
        return f"RunningStat(count={self.count}, mean={np.round(self._mean, 4)})"


PairKey = Hashable
HistoryKey = tuple[PairKey, RelayOption]


class CallHistory:
    """Windowed (pair, option) -> RunningStat store.

    ``window_hours`` matches the controller's refresh period T (24 h by
    default, §4.3).  Old windows can be pruned to bound memory in long
    replays; the predictor only ever reads the immediately preceding
    window.
    """

    def __init__(self, window_hours: float = 24.0) -> None:
        if window_hours <= 0.0:
            raise ValueError(f"window_hours must be > 0: {window_hours}")
        self.window_hours = window_hours
        self._windows: dict[int, dict[HistoryKey, RunningStat]] = {}

    def window_of(self, t_hours: float) -> int:
        """The window index containing absolute time ``t_hours``."""
        if t_hours < 0.0:
            raise ValueError(f"t_hours must be >= 0: {t_hours}")
        return int(t_hours // self.window_hours)

    def add(
        self,
        pair_key: PairKey,
        option: RelayOption,
        t_hours: float,
        metrics: PathMetrics,
    ) -> None:
        """Record one completed call's measured performance."""
        window = self.window_of(t_hours)
        bucket = self._windows.setdefault(window, {})
        stat = bucket.get((pair_key, option))
        if stat is None:
            stat = RunningStat()
            bucket[(pair_key, option)] = stat
        stat.push(metrics)

    def add_group(
        self,
        pair_key: PairKey,
        option: RelayOption,
        window: int,
        values: np.ndarray,
    ) -> None:
        """Fold many same-(pair, option, window) rows at once.

        The grouped entry point of the vector observe path: the caller has
        already bucketed a batch by key, so the per-call dict probing of
        :meth:`add` collapses to one lookup per group.  ``values`` rows
        must be in original call order -- :meth:`RunningStat.push_many`
        folds them sequentially to stay bit-identical to repeated
        :meth:`add`.
        """
        bucket = self._windows.setdefault(window, {})
        stat = bucket.get((pair_key, option))
        if stat is None:
            stat = RunningStat()
            bucket[(pair_key, option)] = stat
        stat.push_many(values)

    def add_many(
        self,
        pair_keys: list[PairKey],
        options: list[RelayOption],
        t_hours: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Record many completed calls, bit-identical to repeated :meth:`add`.

        Parallel sequences: ``pair_keys[i]``, ``options[i]``, ``t_hours[i]``
        and ``values[i]`` (a (rtt, loss, jitter) row) describe call ``i``.
        Rows are grouped by (pair, option, window) and folded per group in
        call order; groups are visited in first-seen order so bucket dict
        insertion order -- which downstream iteration (tomography fits,
        population priors, serialisation) observes -- matches the scalar
        loop exactly.
        """
        n = len(values)
        if not (len(pair_keys) == len(options) == len(t_hours) == n):
            raise ValueError("add_many expects equal-length call sequences")
        if n == 0:
            return
        t_hours = np.asarray(t_hours, dtype=np.float64)
        if np.any(t_hours < 0.0):
            bad = float(t_hours[t_hours < 0.0][0])
            raise ValueError(f"t_hours must be >= 0: {bad}")
        windows = np.floor_divide(t_hours, self.window_hours).astype(np.int64)
        groups: dict[tuple, list[int]] = {}
        for i, (pair_key, option) in enumerate(zip(pair_keys, options)):
            groups.setdefault((pair_key, option, int(windows[i])), []).append(i)
        values = np.asarray(values, dtype=np.float64)
        for (pair_key, option, window), rows in groups.items():
            self.add_group(pair_key, option, window, values[rows])

    def stats(
        self, pair_key: PairKey, option: RelayOption, window: int
    ) -> RunningStat | None:
        """The aggregate for one (pair, option) in one window, if any."""
        bucket = self._windows.get(window)
        if bucket is None:
            return None
        return bucket.get((pair_key, option))

    def window_items(self, window: int) -> Iterator[tuple[HistoryKey, RunningStat]]:
        """All (pair, option) aggregates recorded in one window."""
        bucket = self._windows.get(window)
        if bucket is None:
            return iter(())
        return iter(bucket.items())

    def pair_options(self, pair_key: PairKey, window: int) -> list[RelayOption]:
        """Options with any samples for ``pair_key`` in ``window``."""
        bucket = self._windows.get(window)
        if bucket is None:
            return []
        return [opt for (key, opt) in bucket if key == pair_key]

    def windows(self) -> list[int]:
        """Window indices with any data, ascending."""
        return sorted(self._windows)

    def prune_before(self, window: int) -> int:
        """Drop windows older than ``window``; returns how many were dropped."""
        stale = [w for w in self._windows if w < window]
        for w in stale:
            del self._windows[w]
        return len(stale)

    def merge(self, other: "CallHistory") -> "CallHistory":
        """Fold another shard's aggregates into this store.

        Both stores must share ``window_hours`` (otherwise window indices
        mean different things and the merge would silently mis-bucket).
        Matching (pair, option, window) cells are combined with
        :meth:`RunningStat.merge`; ``other`` is never mutated or aliased.
        Returns ``self`` for chaining.
        """
        if other.window_hours != self.window_hours:
            raise ValueError(
                "cannot merge histories with different windows: "
                f"{self.window_hours} vs {other.window_hours}"
            )
        for window, bucket in other._windows.items():
            mine = self._windows.setdefault(window, {})
            for key, stat in bucket.items():
                existing = mine.get(key)
                if existing is None:
                    existing = RunningStat()
                    mine[key] = existing
                existing.merge(stat)
        return self

    def total_calls(self) -> int:
        """Total number of calls folded into the store."""
        return sum(
            stat.count for bucket in self._windows.values() for stat in bucket.values()
        )

    def __contains__(self, window: int) -> bool:
        if not isinstance(window, int):
            raise TypeError("membership test expects a window index")
        return window in self._windows


def sem_floor(mean: float, relative: float = 0.05, absolute: float = 1e-6) -> float:
    """A lower bound on SEM used to avoid overconfident zero-variance
    predictions from tiny samples."""
    return max(absolute, relative * abs(mean))


def confidence_bounds(mean: float, sem: float, z: float = 1.96) -> tuple[float, float]:
    """(lower, upper) 95% confidence bounds used throughout §4.4."""
    if sem < 0.0 or math.isnan(sem):
        raise ValueError(f"sem must be non-negative: {sem}")
    return (mean - z * sem, mean + z * sem)


def option_to_dict(option: RelayOption) -> dict:
    """JSON-safe form of a relaying option (checkpoint serialisation)."""
    return {
        "kind": option.kind.value,
        "ingress": option.ingress,
        "egress": option.egress,
    }


def option_from_dict(data: dict) -> RelayOption:
    """Inverse of :func:`option_to_dict`."""
    from repro.netmodel.options import OptionKind

    return RelayOption(
        kind=OptionKind(data["kind"]), ingress=data["ingress"], egress=data["egress"]
    )


def _encode_key(value):
    """JSON-safe form of a pair-side key (int, str, or (int, int) tuple)."""
    if isinstance(value, tuple):
        return {"t": list(value)}
    return value


def _decode_key(value):
    if isinstance(value, dict) and "t" in value:
        return tuple(value["t"])
    return value


def history_to_dict(history: CallHistory) -> dict:
    """Serialise a :class:`CallHistory` to JSON-compatible primitives.

    Used for controller checkpointing: the learned per-(pair, option,
    window) aggregates are the state worth surviving a restart (bandit and
    pruning state rebuild at the next refresh).
    """
    windows = {}
    for window in history.windows():
        entries = []
        for (pair_key, option), stat in history.window_items(window):
            entries.append(
                {
                    "pair": [_encode_key(pair_key[0]), _encode_key(pair_key[1])],
                    "option": option_to_dict(option),
                    "count": stat.count,
                    "mean": [float(x) for x in stat._mean],
                    "m2": [float(x) for x in stat._m2],
                }
            )
        windows[str(window)] = entries
    return {"window_hours": history.window_hours, "windows": windows}


def _stat_from_entry(entry: dict, where: str) -> RunningStat:
    """Build one validated :class:`RunningStat` from a checkpoint entry.

    Checkpoints come from disk and may be truncated or corrupted; a bad
    aggregate silently poisons every downstream mean/SEM the predictor
    computes, so reject anything malformed with a clear error instead.
    """
    try:
        count = entry["count"]
        mean = np.asarray(entry["mean"], dtype=float)
        m2 = np.asarray(entry["m2"], dtype=float)
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"corrupt history entry at {where}: {exc!r}") from exc
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        raise ValueError(
            f"corrupt history entry at {where}: count must be a non-negative "
            f"integer, got {count!r}"
        )
    if mean.shape != (_N_METRICS,) or m2.shape != (_N_METRICS,):
        raise ValueError(
            f"corrupt history entry at {where}: mean/m2 must each hold "
            f"{_N_METRICS} values, got {mean.shape[0] if mean.ndim == 1 else mean.shape}"
            f"/{m2.shape[0] if m2.ndim == 1 else m2.shape}"
        )
    if not (np.isfinite(mean).all() and np.isfinite(m2).all()):
        raise ValueError(f"corrupt history entry at {where}: non-finite mean/m2")
    if (m2 < 0.0).any():
        raise ValueError(f"corrupt history entry at {where}: negative m2")
    stat = RunningStat()
    stat.count = count
    stat._mean = mean
    stat._m2 = m2
    return stat


def history_from_dict(data: dict) -> CallHistory:
    """Rebuild a :class:`CallHistory` from :func:`history_to_dict` output.

    Raises :class:`ValueError` on corrupt entries (negative counts,
    non-finite moments, wrong-length mean/m2 vectors) rather than loading
    state that would quietly break every later SEM computation.
    """
    history = CallHistory(window_hours=float(data["window_hours"]))
    for window_str, entries in data["windows"].items():
        try:
            window = int(window_str)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"corrupt history window index: {window_str!r}") from exc
        bucket = history._windows.setdefault(window, {})
        for i, entry in enumerate(entries):
            where = f"window {window}, entry {i}"
            try:
                pair = entry["pair"]
                pair_key = (_decode_key(pair[0]), _decode_key(pair[1]))
                option = option_from_dict(entry["option"])
            except (KeyError, IndexError, TypeError, ValueError) as exc:
                raise ValueError(f"corrupt history entry at {where}: {exc!r}") from exc
            bucket[(pair_key, option)] = _stat_from_entry(entry, where)
    return history
