"""Multipath relaying: split or duplicate a call across two relay paths.

Via (the source paper) commits each call to a single best path.  The
online-learning multipath telephony literature (see ``PAPERS.md``) shows
that under volatile loss -- exactly the outage-heavy regimes our fault
plans make reproducible -- sending a call over *two* overlay paths at once
can beat any single-path selector: a duplicated stream survives one path
dying mid-call, and a split stream degrades gracefully instead of
blackholing.

Three pieces:

* :class:`PathSet` -- the multipath assignment: an ordered pair of
  distinct :class:`~repro.netmodel.options.RelayOption` paths plus the
  redundancy mode (``duplicate``: full copy on both; ``split``: FEC-style
  weighted stream division with ``split_weight`` of the stream on the
  primary).
* The combined-quality reward model -- :func:`combine_duplicate` /
  :func:`combine_split` / :func:`combined_metrics` fold the two paths'
  realised :class:`~repro.netmodel.metrics.PathMetrics` into the quality
  the receiver experiences; costs then come from the existing
  :class:`~repro.core.costs.MetricCost` / :class:`~repro.core.costs.MosCost`
  models unchanged.
* :class:`MultipathBanditPolicy` -- a bandit over a capped path-*pair*
  arm-space, reusing :class:`~repro.core.bandit.UCB1Explorer` (arms are
  hashable keys; a :class:`PathSet` is as good an arm as a single option)
  in ``classic`` range-normalisation mode, since no per-pair predictions
  exist over combined paths.

Replay integration: the engine detects ``assign_paths`` /
``observe_paths`` and scores both paths per call with per-path outage
semantics (:mod:`repro.simulation.replay`), so ``run_grid`` compares
bandit-over-paths against Via's single-path top-k end to end
(``benchmarks/bench_ext_multipath.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Hashable, Protocol

import numpy as np

from repro.core.bandit import UCB1Explorer
from repro.core.costs import CostModel, make_cost_model
from repro.core.keys import PairKeyer, PairView
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import RelayOption
from repro.telephony.call import Call

__all__ = [
    "PATHSET_MODES",
    "PathSet",
    "MultipathPolicy",
    "combine_duplicate",
    "combine_split",
    "combined_metrics",
    "MultipathBanditPolicy",
    "RandomPathSetPolicy",
    "MULTIPATH_STATE_FORMAT",
]

#: Supported redundancy modes.
PATHSET_MODES: tuple[str, ...] = ("duplicate", "split")

MULTIPATH_STATE_FORMAT = "via-multipath-policy-v1"


@dataclass(frozen=True, slots=True)
class PathSet:
    """Two concurrent relay paths for one call.

    ``duplicate`` sends a full copy of the stream down both paths (the
    receiver plays whichever copy of each packet arrives first).
    ``split`` divides the stream: a ``split_weight`` fraction rides the
    primary, the rest the secondary -- FEC-style redundancy weight, where
    losing one path costs only that path's share of packets.
    """

    primary: RelayOption
    secondary: RelayOption
    mode: str = "duplicate"
    split_weight: float = 0.5

    def __post_init__(self) -> None:
        if self.primary == self.secondary:
            raise ValueError("a PathSet needs two distinct paths")
        if self.mode not in PATHSET_MODES:
            raise ValueError(
                f"unknown PathSet mode {self.mode!r}; expected one of {PATHSET_MODES}"
            )
        if not 0.0 < self.split_weight < 1.0:
            raise ValueError(
                f"split_weight must be in (0, 1): {self.split_weight}"
            )

    @property
    def options(self) -> tuple[RelayOption, RelayOption]:
        return (self.primary, self.secondary)

    def relay_ids(self) -> tuple[int, ...]:
        """Distinct relay ids across both paths, first-seen order."""
        seen: list[int] = []
        for option in self.options:
            for rid in option.relay_ids():
                if rid not in seen:
                    seen.append(rid)
        return tuple(seen)

    def reversed(self) -> "PathSet":
        """The same path set seen from the callee's side."""
        return PathSet(
            primary=self.primary.reversed(),
            secondary=self.secondary.reversed(),
            mode=self.mode,
            split_weight=self.split_weight,
        )

    def __str__(self) -> str:
        if self.mode == "split":
            return f"split[{self.split_weight:g}]({self.primary} | {self.secondary})"
        return f"dup({self.primary} | {self.secondary})"


class MultipathPolicy(Protocol):
    """What the replay engine needs from a multipath strategy."""

    name: str

    def assign_paths(self, call: Call, options: list[RelayOption]) -> PathSet:
        """Pick a two-path assignment for ``call`` among ``options``."""
        ...

    def observe_paths(
        self,
        call: Call,
        path_set: PathSet,
        primary_metrics: PathMetrics,
        secondary_metrics: PathMetrics,
        combined: PathMetrics,
    ) -> None:
        """Learn from the realised per-path and combined performance."""
        ...


# ----------------------------------------------------------------------
# The combined-quality reward model
# ----------------------------------------------------------------------


def combine_duplicate(
    primary: PathMetrics, secondary: PathMetrics
) -> PathMetrics:
    """Receiver-experienced quality of a fully duplicated stream.

    Each packet is delivered by whichever copy arrives, so latency and
    jitter follow the faster path (elementwise best-of) and a packet is
    lost only when *both* copies are lost (loss product, assuming
    independent path loss).  Every combined metric is therefore bounded
    above by the best constituent path's -- duplication can only help,
    at 2x the bandwidth.
    """
    return PathMetrics(
        rtt_ms=min(primary.rtt_ms, secondary.rtt_ms),
        loss_rate=primary.loss_rate * secondary.loss_rate,
        jitter_ms=min(primary.jitter_ms, secondary.jitter_ms),
    )


def combine_split(
    primary: PathMetrics, secondary: PathMetrics, weight: float
) -> PathMetrics:
    """Receiver-experienced quality of a ``weight``-split stream.

    The stream divides: a ``weight`` fraction of packets ride the primary
    and see its metrics, the rest the secondary's -- so every combined
    metric is the packet-weighted blend, bounded by the best and worst
    constituent path.  One path dying costs its share of the stream
    (loss >= its weight) instead of the whole call.
    """
    if not 0.0 < weight < 1.0:
        raise ValueError(f"weight must be in (0, 1): {weight}")
    w = weight
    return PathMetrics(
        rtt_ms=w * primary.rtt_ms + (1.0 - w) * secondary.rtt_ms,
        loss_rate=w * primary.loss_rate + (1.0 - w) * secondary.loss_rate,
        jitter_ms=w * primary.jitter_ms + (1.0 - w) * secondary.jitter_ms,
    )


def combined_metrics(
    path_set: PathSet, primary: PathMetrics, secondary: PathMetrics
) -> PathMetrics:
    """The reward-model entry point: combine per ``path_set.mode``."""
    if path_set.mode == "duplicate":
        return combine_duplicate(primary, secondary)
    return combine_split(primary, secondary, path_set.split_weight)


def _candidate_singles(
    norm_options: list[RelayOption], max_singles: int
) -> list[RelayOption]:
    """The capped per-pair single-path candidate set, order-preserving.

    ``options_for_pair`` returns direct first, then bounces, then
    transits; taking a prefix keeps the cheapest/likeliest paths in the
    arm space while capping the pair combinatorics.
    """
    seen: list[RelayOption] = []
    for option in norm_options:
        if option not in seen:
            seen.append(option)
        if len(seen) >= max_singles:
            break
    return seen


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------


class MultipathBanditPolicy:
    """Bandit over path pairs: learn which two-path combination wins.

    Per (pair, direct-blocked) state, the arm space is every unordered
    pair of the first ``max_singles`` candidate options, capped at
    ``max_pairs`` arms, each arm a :class:`PathSet` in the configured
    redundancy mode.  Selection is :class:`~repro.core.bandit.UCB1Explorer`
    in ``classic`` range-normalisation mode over the *combined* cost of
    the realised call (no predictions exist for combined paths), with an
    ε fraction of calls exploring uniformly -- the general-exploration
    hedge against non-stationary path quality.

    The policy participates in outage routing (``set_down_relays``
    repicks around arms riding a down relay) and checkpoints its learned
    pair-bandit state (``state_dict`` / ``load_state_dict``).
    """

    def __init__(
        self,
        metric: str = "rtt_ms",
        *,
        mode: str = "duplicate",
        split_weight: float = 0.5,
        max_singles: int = 4,
        max_pairs: int = 10,
        epsilon: float = 0.05,
        exploration_coef: float = 0.1,
        granularity: str = "as",
        seed: int = 42,
        name: str | None = None,
    ) -> None:
        if mode not in PATHSET_MODES:
            raise ValueError(
                f"unknown mode {mode!r}; expected one of {PATHSET_MODES}"
            )
        if max_singles < 2:
            raise ValueError(f"max_singles must be >= 2: {max_singles}")
        if max_pairs < 1:
            raise ValueError(f"max_pairs must be >= 1: {max_pairs}")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1]: {epsilon}")
        self.metric = metric
        self.mode = mode
        self.split_weight = split_weight
        self.max_singles = max_singles
        self.max_pairs = max_pairs
        self.epsilon = epsilon
        self.exploration_coef = exploration_coef
        self.name = name or f"multipath-ucb[{metric},{mode}]"
        self._cost: CostModel = make_cost_model(metric)
        self._keyer = PairKeyer(granularity)  # type: ignore[arg-type]
        self._rng = np.random.default_rng(seed)
        self._bandits: dict[Hashable, UCB1Explorer] = {}
        self._down_relays: frozenset[int] = frozenset()
        self.n_epsilon_explorations = 0
        self.n_outage_repicks = 0

    # -- the multipath policy interface --------------------------------

    def assign_paths(self, call: Call, options: list[RelayOption]) -> PathSet:
        view = self._keyer.view(call)
        norm_options = [view.normalize(o) for o in options]
        bandit = self._bandit_for(view, call.direct_blocked, norm_options)
        arms = bandit.arms
        if self.epsilon > 0.0 and self._rng.random() < self.epsilon:
            self.n_epsilon_explorations += 1
            choice = arms[int(self._rng.integers(len(arms)))]
        else:
            choice = bandit.choose()
        choice = self._avoid_down(arms, choice)
        return self._denormalize(view, choice)

    def observe_paths(
        self,
        call: Call,
        path_set: PathSet,
        primary_metrics: PathMetrics,
        secondary_metrics: PathMetrics,
        combined: PathMetrics,
    ) -> None:
        view = self._keyer.view(call)
        norm = self._normalize(view, path_set)
        bandit = self._bandits.get((view.pair_key, call.direct_blocked))
        if bandit is not None and bandit.has_arm(norm):
            bandit.update(norm, self._cost.call_cost(combined))

    # -- outage routing -------------------------------------------------

    @property
    def down_relays(self) -> frozenset[int]:
        return self._down_relays

    def set_down_relays(self, relay_ids) -> None:
        """Replace the set of relays assign_paths must route around."""
        self._down_relays = frozenset(int(r) for r in relay_ids)

    def _arm_down(self, arm: PathSet) -> bool:
        return any(rid in self._down_relays for rid in arm.relay_ids())

    def _avoid_down(self, arms: list[PathSet], choice: PathSet) -> PathSet:
        """Repick the first fully-live arm when the choice rides a down relay.

        If every arm touches a down relay the original choice stands: the
        realised (partially blackholed) combined cost teaches the bandit
        the same lesson, and duplication still saves the call when only
        one of its paths is down.
        """
        if not self._down_relays or not self._arm_down(choice):
            return choice
        self.n_outage_repicks += 1
        for candidate in arms:
            if candidate != choice and not self._arm_down(candidate):
                return candidate
        return choice

    # -- internals ------------------------------------------------------

    def _bandit_for(
        self,
        view: PairView,
        direct_blocked: bool,
        norm_options: list[RelayOption],
    ) -> UCB1Explorer:
        key = (view.pair_key, direct_blocked)
        bandit = self._bandits.get(key)
        if bandit is None:
            arms = self._arm_space(norm_options)
            bandit = UCB1Explorer(
                arms,  # type: ignore[arg-type] -- arms are hashable keys
                normalizer=1.0,
                exploration_coef=self.exploration_coef,
                mode="classic",
            )
            self._bandits[key] = bandit
        return bandit

    def _arm_space(self, norm_options: list[RelayOption]) -> list[PathSet]:
        singles = _candidate_singles(norm_options, self.max_singles)
        if len(singles) < 2:
            raise ValueError(
                f"{self.name}: multipath needs >= 2 distinct options, "
                f"got {len(singles)}"
            )
        arms = [
            PathSet(a, b, mode=self.mode, split_weight=self.split_weight)
            for a, b in combinations(singles, 2)
        ]
        return arms[: self.max_pairs]

    @staticmethod
    def _normalize(view: PairView, path_set: PathSet) -> PathSet:
        return path_set.reversed() if view.flipped else path_set

    @staticmethod
    def _denormalize(view: PairView, path_set: PathSet) -> PathSet:
        return path_set.reversed() if view.flipped else path_set

    # -- checkpointing --------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-compatible checkpoint of the learned pair-bandit state."""
        from repro.core.history import _encode_key

        states = []
        for (pair_key, direct_blocked), bandit in self._bandits.items():
            per_arm = bandit.export_state()
            states.append(
                {
                    "pair": [_encode_key(pair_key[0]), _encode_key(pair_key[1])],
                    "direct_blocked": bool(direct_blocked),
                    "arms": [self._pathset_to_dict(a) for a in bandit.arms],
                    "counts": [per_arm[a][0] for a in bandit.arms],
                    "cost_sums": [per_arm[a][1] for a in bandit.arms],
                    "max_seen_cost": bandit.max_seen_cost,
                }
            )
        return {
            "format": MULTIPATH_STATE_FORMAT,
            "metric": self.metric,
            "mode": self.mode,
            "rng": self._rng.bit_generator.state,
            "n_epsilon_explorations": self.n_epsilon_explorations,
            "pair_states": states,
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore a checkpoint produced by :meth:`state_dict`."""
        from repro.core.history import _decode_key

        if payload.get("format") != MULTIPATH_STATE_FORMAT:
            raise ValueError(
                f"unrecognised checkpoint format: {payload.get('format')!r}"
            )
        if payload.get("metric") != self.metric:
            raise ValueError(
                f"checkpoint optimises {payload.get('metric')!r}, "
                f"policy optimises {self.metric!r}"
            )
        rng_state = payload.get("rng")
        if rng_state is not None:
            self._rng.bit_generator.state = rng_state
        self.n_epsilon_explorations = int(
            payload.get("n_epsilon_explorations", 0)
        )
        self._bandits = {}
        for entry in payload.get("pair_states", ()):
            pair_key = (
                _decode_key(entry["pair"][0]),
                _decode_key(entry["pair"][1]),
            )
            arms = [self._pathset_from_dict(a) for a in entry["arms"]]
            bandit = UCB1Explorer(
                arms,  # type: ignore[arg-type]
                normalizer=1.0,
                exploration_coef=self.exploration_coef,
                mode="classic",
            )
            bandit.restore_state(
                {
                    arm: (int(count), float(cost_sum))
                    for arm, count, cost_sum in zip(
                        arms, entry["counts"], entry["cost_sums"]
                    )
                },
                max_seen_cost=float(entry.get("max_seen_cost", 0.0)),
            )
            self._bandits[(pair_key, bool(entry["direct_blocked"]))] = bandit

    @staticmethod
    def _pathset_to_dict(path_set: PathSet) -> dict:
        from repro.core.history import option_to_dict

        return {
            "primary": option_to_dict(path_set.primary),
            "secondary": option_to_dict(path_set.secondary),
            "mode": path_set.mode,
            "split_weight": path_set.split_weight,
        }

    @staticmethod
    def _pathset_from_dict(data: dict) -> PathSet:
        from repro.core.history import option_from_dict

        return PathSet(
            primary=option_from_dict(data["primary"]),
            secondary=option_from_dict(data["secondary"]),
            mode=data["mode"],
            split_weight=float(data["split_weight"]),
        )


class RandomPathSetPolicy:
    """Uniform-random path pairs over the same capped candidate space.

    The exploration floor every learning multipath policy must beat; it
    samples from the identical ``max_singles``-capped arm space as
    :class:`MultipathBanditPolicy` so the comparison isolates *learning*
    rather than candidate-set differences.
    """

    def __init__(
        self,
        *,
        mode: str = "duplicate",
        split_weight: float = 0.5,
        max_singles: int = 4,
        seed: int = 42,
        name: str | None = None,
    ) -> None:
        if mode not in PATHSET_MODES:
            raise ValueError(
                f"unknown mode {mode!r}; expected one of {PATHSET_MODES}"
            )
        if max_singles < 2:
            raise ValueError(f"max_singles must be >= 2: {max_singles}")
        self.mode = mode
        self.split_weight = split_weight
        self.max_singles = max_singles
        self.name = name or f"multipath-random[{mode}]"
        self._rng = np.random.default_rng(seed)

    def assign_paths(self, call: Call, options: list[RelayOption]) -> PathSet:
        singles = _candidate_singles(options, self.max_singles)
        if len(singles) < 2:
            raise ValueError(
                f"{self.name}: multipath needs >= 2 distinct options, "
                f"got {len(singles)}"
            )
        i, j = self._rng.choice(len(singles), size=2, replace=False)
        return PathSet(
            singles[int(i)],
            singles[int(j)],
            mode=self.mode,
            split_weight=self.split_weight,
        )

    def observe_paths(
        self,
        call: Call,
        path_set: PathSet,
        primary_metrics: PathMetrics,
        secondary_metrics: PathMetrics,
        combined: PathMetrics,
    ) -> None:
        return None
