"""Active measurements: the §7 "future work" extension, implemented.

The paper's VIA relies purely on passive measurements from real calls and
suggests augmenting them with *active* measurements -- mock calls
orchestrated by the controller to fill "holes" in coverage, making both
tomography and the bandit more effective, subject to a probing budget.

:class:`ActiveProber` implements exactly that on top of a
:class:`~repro.core.policy.ViaPolicy` at AS granularity: after each real
call it accrues probe allowance (``probe_fraction`` probes per call) and
spends it on (pair, option) combinations the current predictor cannot
reach.  The replay engine executes the probes as mock calls and feeds the
measurements back to the policy.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.core.policy import ViaPolicy
from repro.netmodel.options import RelayOption
from repro.telephony.call import Call

__all__ = ["ProbeRequest", "ActiveProber"]

#: A probe: make a mock call between two ASes over one relaying option.
ProbeRequest = tuple[int, int, RelayOption]


class ActiveProber:
    """Schedules mock-call probes into the policy's coverage holes.

    ``probe_fraction`` is the probing budget: probes issued per real call
    (0.05 = one mock call per twenty real calls).  Holes are recomputed
    lazily whenever the policy enters a new refresh period; each hole is
    probed at most ``probes_per_hole`` times per period.
    """

    def __init__(
        self,
        policy: ViaPolicy,
        *,
        probe_fraction: float = 0.05,
        probes_per_hole: int = 2,
        max_queue: int = 10_000,
    ) -> None:
        if policy.config.granularity != "as":
            raise ValueError(
                "active probing needs AS granularity: pair keys must be "
                "addressable AS numbers to place a mock call"
            )
        if not 0.0 <= probe_fraction <= 1.0:
            raise ValueError(f"probe_fraction must be in [0, 1]: {probe_fraction}")
        if probes_per_hole < 1 or max_queue < 1:
            raise ValueError("probes_per_hole and max_queue must be >= 1")
        self.policy = policy
        self.probe_fraction = probe_fraction
        self.probes_per_hole = probes_per_hole
        self.max_queue = max_queue
        self._queue: deque[ProbeRequest] = deque()
        self._seen_period = -1
        self._allowance = 0.0
        self.n_probes_issued = 0

    def _refill_queue(self) -> None:
        """Rebuild the probe queue from the policy's current holes."""
        self._queue.clear()
        for pair_key, option in self.policy.coverage_holes():
            src, dst = self._pair_asns(pair_key)
            for _ in range(self.probes_per_hole):
                if len(self._queue) >= self.max_queue:
                    return
                self._queue.append((src, dst, option))

    @staticmethod
    def _pair_asns(pair_key: Hashable) -> tuple[int, int]:
        src, dst = pair_key  # type: ignore[misc]
        return int(src), int(dst)

    def probes_after(self, call: Call) -> list[ProbeRequest]:
        """Probes to launch right after one real call completes."""
        if self.probe_fraction <= 0.0:
            return []
        if self.policy.period != self._seen_period:
            self._seen_period = self.policy.period
            self._refill_queue()
        self._allowance += self.probe_fraction
        issued: list[ProbeRequest] = []
        while self._allowance >= 1.0 and self._queue:
            issued.append(self._queue.popleft())
            self._allowance -= 1.0
            self.n_probes_issued += 1
        # Unspendable allowance does not bank across dry spells forever.
        self._allowance = min(self._allowance, 10.0)
        return issued

    def make_probe_call(self, request: ProbeRequest, t_hours: float, call_id: int) -> Call:
        """A synthetic mock-call record carrying the probe's endpoints.

        Country fields are placeholders: probing operates at AS
        granularity, where only the AS numbers key the history.
        """
        src, dst, _option = request
        return Call(
            call_id=call_id,
            t_hours=t_hours,
            src_asn=src,
            dst_asn=dst,
            src_country="probe",
            dst_country="probe",
            src_user=-1,
            dst_user=-1,
            duration_s=10.0,
        )
