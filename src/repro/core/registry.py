"""Declarative policy registry: every selection strategy, one namespace.

Before this module, policy construction was scattered across ad-hoc
switches -- ``PolicySpec.build`` in :mod:`repro.simulation.parallel`,
``standard_policies`` in :mod:`repro.simulation.experiment`, the testbed's
hand-built :class:`~repro.core.policy.ViaConfig`, and each benchmark's own
factory calls.  Adding a selector meant touching all of them.

Now a selector is **one registration**::

    from repro.core.registry import register, schema_field

    @register(
        "ldns",
        description="Pick the relay closest to the caller's LDNS.",
        schema=(schema_field("radius_km", "float", 500.0),),
    )
    def _build_ldns(world, *, metric, seed, **overrides):
        return LdnsPolicy(metric=metric, seed=seed, **overrides)

Each :class:`PolicyEntry` carries the factory, a config schema (field
names, display types, defaults -- what ``repro policies`` prints and what
override validation is checked against), and capability flags:

* ``supports_batch`` -- serves the vectorised ``assign_many`` /
  ``observe_many`` hot path (see ``docs/performance.md``);
* ``supports_checkpoint`` -- round-trips learned state through
  ``state_dict`` / ``load_state_dict``;
* ``supports_multipath`` -- assigns :class:`~repro.core.multipath.PathSet`
  path pairs via ``assign_paths`` / ``observe_paths`` instead of single
  :class:`~repro.netmodel.options.RelayOption` choices.

``PolicySpec`` resolves through :data:`REGISTRY` instead of a hardcoded
switch, so ``run_grid``, ``standard_policies``, the testbed, and the
benchmarks all construct policies from this one source of truth; a policy
built by registry name is bit-identical to one built directly from its
factory.  Unknown names fail with a did-you-mean listing
(:class:`UnknownPolicyError`).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, fields as dataclass_fields
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

from repro.core.baselines import (
    DefaultPolicy,
    OraclePolicy,
    make_strawman_exploration,
    make_strawman_prediction,
    make_via,
    via_config,
)
from repro.core.caching import CachedAssignmentPolicy
from repro.core.hybrid import HybridReactivePolicy
from repro.core.multipath import MultipathBanditPolicy, RandomPathSetPolicy
from repro.core.policy import (
    SelectionPolicy,
    ViaConfig,
    ViaPolicy,
    VectorizedViaPolicy,
)
from repro.core.sharding import ShardedPolicy
from repro.core.tomography import InterRelayLookup
from repro.netmodel.metrics import PathMetrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.netmodel.world import World

__all__ = [
    "ConfigField",
    "PolicyEntry",
    "PolicyRegistry",
    "UnknownPolicyError",
    "REGISTRY",
    "register",
    "build_policy",
    "policy_names",
    "world_inter_relay",
    "schema_field",
    "viaconfig_schema",
]


def world_inter_relay(world: "World") -> InterRelayLookup:
    """The provider's knowledge of its own backbone (§4.4), from a world.

    The canonical inter-relay lookup every world-built policy closes over:
    the backbone segments' base performance, which the stable private-WAN
    regime keeps accurate.  ``repro.simulation.experiment``'s
    ``make_inter_relay_lookup`` delegates here so registry-built and
    directly-built policies share one definition.
    """

    def lookup(r1: int, r2: int) -> PathMetrics:
        return world.inter_segment(r1, r2).base

    return lookup


class UnknownPolicyError(ValueError):
    """An unregistered policy name, with a did-you-mean listing."""

    def __init__(self, name: str, known: tuple[str, ...]) -> None:
        suggestions = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
        hint = f"; did you mean {', '.join(map(repr, suggestions))}?" if suggestions else ""
        super().__init__(
            f"unknown policy spec kind: {name!r}{hint} "
            f"(registered: {', '.join(known)})"
        )
        self.name = name
        self.suggestions = tuple(suggestions)


@dataclass(frozen=True, slots=True)
class ConfigField:
    """One schema entry: an override key with its display type and default."""

    name: str
    type: str
    default: Any


def schema_field(name: str, type_name: str, default: Any) -> ConfigField:
    """Convenience constructor for registration sites."""
    return ConfigField(name=name, type=type_name, default=default)


_VIA_DEFAULTS = ViaConfig()


def viaconfig_schema(
    *, exclude: tuple[str, ...] = ("metric", "seed")
) -> tuple[ConfigField, ...]:
    """The :class:`ViaConfig` knob surface as schema fields.

    Derived from the dataclass itself so the schema can never drift from
    the config; ``metric`` and ``seed`` are excluded by default because
    they are first-class arguments of :meth:`PolicyRegistry.build`, not
    overrides.
    """
    return tuple(
        ConfigField(f.name, str(f.type), getattr(_VIA_DEFAULTS, f.name))
        for f in dataclass_fields(ViaConfig)
        if f.name not in exclude
    )


@dataclass(frozen=True, slots=True)
class PolicyEntry:
    """One registered policy: factory + schema + capability flags.

    ``factory(world, *, metric, seed, **overrides)`` builds the live
    policy; ``world`` may be ``None`` for entries with
    ``needs_world=False``.  ``policy_class`` is the concrete class the
    factory produces (used by the registry-completeness lint and by
    harnesses like ``run_differential`` that construct the class directly
    from a config).
    """

    name: str
    description: str
    factory: Callable[..., SelectionPolicy]
    schema: tuple[ConfigField, ...] = ()
    supports_batch: bool = False
    supports_checkpoint: bool = False
    supports_multipath: bool = False
    needs_world: bool = False
    policy_class: type | None = None

    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.schema)

    def validate_overrides(self, overrides: Mapping[str, Any]) -> None:
        """Reject override keys outside the schema, with a listing."""
        allowed = set(self.field_names())
        unknown = sorted(set(overrides) - allowed)
        if unknown:
            raise ValueError(
                f"unknown config override(s) for policy {self.name!r}: "
                f"{', '.join(map(repr, unknown))} "
                f"(valid: {', '.join(sorted(allowed)) or '<none>'})"
            )

    def build(
        self,
        world: "World | None" = None,
        *,
        metric: str = "rtt_ms",
        seed: int = 42,
        **overrides: Any,
    ) -> SelectionPolicy:
        """Construct the live policy, validating overrides first."""
        self.validate_overrides(overrides)
        if self.needs_world and world is None:
            raise ValueError(
                f"policy {self.name!r} needs a world to build against "
                "(it closes over ground truth or the backbone lookup)"
            )
        return self.factory(world, metric=metric, seed=seed, **overrides)


class PolicyRegistry:
    """Name → :class:`PolicyEntry` mapping with registration decorator."""

    def __init__(self) -> None:
        self._entries: dict[str, PolicyEntry] = {}

    def register(
        self,
        name: str,
        *,
        description: str,
        schema: tuple[ConfigField, ...] = (),
        supports_batch: bool = False,
        supports_checkpoint: bool = False,
        supports_multipath: bool = False,
        needs_world: bool = False,
        policy_class: type | None = None,
    ) -> Callable[[Callable[..., SelectionPolicy]], Callable[..., SelectionPolicy]]:
        """Decorator: register ``factory`` under ``name``.

        The factory keeps working as a plain function; the registry only
        records it.  Re-registering a name is an error -- entries are the
        single source of truth and silent replacement would hide it.
        """
        if not name:
            raise ValueError("policy name must be non-empty")

        def decorator(
            factory: Callable[..., SelectionPolicy],
        ) -> Callable[..., SelectionPolicy]:
            if name in self._entries:
                raise ValueError(f"policy {name!r} is already registered")
            self._entries[name] = PolicyEntry(
                name=name,
                description=description,
                factory=factory,
                schema=schema,
                supports_batch=supports_batch,
                supports_checkpoint=supports_checkpoint,
                supports_multipath=supports_multipath,
                needs_world=needs_world,
                policy_class=policy_class,
            )
            return factory

        return decorator

    def get(self, name: str) -> PolicyEntry:
        entry = self._entries.get(name)
        if entry is None:
            raise UnknownPolicyError(name, self.names())
        return entry

    def names(self) -> tuple[str, ...]:
        return tuple(self._entries)

    def entries(self) -> tuple[PolicyEntry, ...]:
        return tuple(self._entries.values())

    def policy_classes(self) -> set[type]:
        """Every concrete class registered entries claim to produce."""
        return {e.policy_class for e in self._entries.values() if e.policy_class}

    def build(
        self,
        name: str,
        world: "World | None" = None,
        *,
        metric: str = "rtt_ms",
        seed: int = 42,
        **overrides: Any,
    ) -> SelectionPolicy:
        """Build policy ``name``; unknown names get a did-you-mean error."""
        return self.get(name).build(world, metric=metric, seed=seed, **overrides)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[PolicyEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)


#: The process-wide registry all built-in policies register against.
REGISTRY = PolicyRegistry()

#: Module-level aliases used by registration sites and call sites alike.
register = REGISTRY.register


def build_policy(
    name: str,
    world: "World | None" = None,
    *,
    metric: str = "rtt_ms",
    seed: int = 42,
    **overrides: Any,
) -> SelectionPolicy:
    """Build a registered policy by name (see :meth:`PolicyRegistry.build`)."""
    return REGISTRY.build(name, world, metric=metric, seed=seed, **overrides)


def policy_names() -> tuple[str, ...]:
    """All registered policy names, in registration order."""
    return REGISTRY.names()


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------
#
# Factories take (world, *, metric, seed, **overrides) and forward to the
# same constructors the pre-registry switches called, with identical
# arguments -- the bit-identity contract `tests/test_registry.py` pins.


@register(
    "default",
    description="BGP default path; relays only when NAT blocks direct (§4.2 baseline).",
    schema=(schema_field("name", "str", "default"),),
    policy_class=DefaultPolicy,
)
def _build_default(world, *, metric: str, seed: int, **overrides):
    return DefaultPolicy(**overrides)


@register(
    "oracle",
    description="Foresight baseline: best true-mean option per (pair, day) (§3.2).",
    schema=(
        schema_field("budget", "float", 1.0),
        schema_field("name", "str | None", None),
    ),
    needs_world=True,
    policy_class=OraclePolicy,
)
def _build_oracle(world, *, metric: str, seed: int, **overrides):
    return OraclePolicy(world, metric, **overrides)


@register(
    "via",
    description="Full Algorithm 1: prediction-guided top-k + modified UCB1.",
    schema=viaconfig_schema(),
    supports_batch=True,
    supports_checkpoint=True,
    needs_world=True,
    policy_class=ViaPolicy,
)
def _build_via(world, *, metric: str, seed: int, **overrides):
    return make_via(
        metric, inter_relay=world_inter_relay(world), seed=seed, **overrides
    )


@register(
    "via-vector",
    description="ViaPolicy with scalar calls routed through the vector hot path.",
    schema=viaconfig_schema(),
    supports_batch=True,
    supports_checkpoint=True,
    needs_world=True,
    policy_class=VectorizedViaPolicy,
)
def _build_via_vector(world, *, metric: str, seed: int, **overrides):
    return make_via(
        metric,
        inter_relay=world_inter_relay(world),
        seed=seed,
        cls=VectorizedViaPolicy,
        name=f"via-vector[{metric}]",
        **overrides,
    )


@register(
    "strawman-prediction",
    description="Strawman I (§4.2): pure prediction, argmin predicted mean.",
    schema=viaconfig_schema(),
    needs_world=True,
    policy_class=ViaPolicy,
)
def _build_strawman_prediction(world, *, metric: str, seed: int, **overrides):
    return make_strawman_prediction(
        metric, inter_relay=world_inter_relay(world), seed=seed, **overrides
    )


@register(
    "strawman-exploration",
    description="Strawman II (§4.2): ε-greedy over all options, no pruning.",
    schema=(schema_field("greedy_epsilon", "float", 0.1), *viaconfig_schema(
        exclude=("metric", "seed", "greedy_epsilon")
    )),
    policy_class=ViaPolicy,
)
def _build_strawman_exploration(world, *, metric: str, seed: int, **overrides):
    return make_strawman_exploration(metric, seed=seed, **overrides)


#: Knobs of :class:`HybridReactivePolicy` beyond the ViaConfig surface.
_HYBRID_FIELDS = (
    schema_field("probe_top_n", "int", 2),
    schema_field("probe_window_s", "float", 10.0),
    schema_field("min_duration_s", "float", 60.0),
)


@register(
    "hybrid-reactive",
    description="§7 hybrid: prediction-pruned in-call probing, keep the winner.",
    schema=(*_HYBRID_FIELDS, *viaconfig_schema()),
    supports_checkpoint=True,
    needs_world=True,
    policy_class=HybridReactivePolicy,
)
def _build_hybrid_reactive(world, *, metric: str, seed: int, **overrides):
    hybrid_keys = {f.name for f in _HYBRID_FIELDS}
    hybrid_kwargs = {k: v for k, v in overrides.items() if k in hybrid_keys}
    config_overrides = {k: v for k, v in overrides.items() if k not in hybrid_keys}
    return HybridReactivePolicy(
        via_config(metric, seed=seed, **config_overrides),
        inter_relay=world_inter_relay(world),
        **hybrid_kwargs,
    )


#: Knobs of :class:`CachedAssignmentPolicy` beyond the wrapped ViaConfig.
_CACHE_FIELDS = (
    schema_field("ttl_hours", "float", 1.0),
    schema_field("max_entries", "int | None", None),
)


@register(
    "cached-via",
    description="VIA behind a per-pair client decision cache (§3.1 scalability).",
    schema=(*_CACHE_FIELDS, *viaconfig_schema()),
    needs_world=True,
    policy_class=CachedAssignmentPolicy,
)
def _build_cached_via(world, *, metric: str, seed: int, **overrides):
    cache_keys = {f.name for f in _CACHE_FIELDS}
    cache_kwargs = {k: v for k, v in overrides.items() if k in cache_keys}
    config_overrides = {k: v for k, v in overrides.items() if k not in cache_keys}
    granularity = config_overrides.get("granularity", "as")
    inner = make_via(
        metric, inter_relay=world_inter_relay(world), seed=seed, **config_overrides
    )
    return CachedAssignmentPolicy(inner, granularity=granularity, **cache_kwargs)


#: Knobs of :class:`ShardedPolicy` beyond the per-shard ViaConfig.
_SHARD_FIELDS = (
    schema_field("n_shards", "int", 4),
    schema_field("placement", "str", "hash"),
    schema_field("d_choices", "int", 2),
)


@register(
    "sharded-via",
    description="K-way partitioned control plane of independent VIA shards (§7).",
    schema=(*_SHARD_FIELDS, *viaconfig_schema()),
    supports_batch=True,
    supports_checkpoint=True,
    needs_world=True,
    policy_class=ShardedPolicy,
)
def _build_sharded_via(world, *, metric: str, seed: int, **overrides):
    shard_keys = {f.name for f in _SHARD_FIELDS}
    shard_kwargs = {k: v for k, v in overrides.items() if k in shard_keys}
    config_overrides = {k: v for k, v in overrides.items() if k not in shard_keys}
    n_shards = shard_kwargs.pop("n_shards", 4)
    granularity = config_overrides.get("granularity", "as")
    inter_relay = world_inter_relay(world)

    def shard_factory(i: int) -> ViaPolicy:
        # Per-shard seeds decorrelate exploration, matching the convention
        # of benchmarks/bench_ext_sharded_controller.py.
        return make_via(
            metric, inter_relay=inter_relay, seed=seed + i, **config_overrides
        )

    return ShardedPolicy(
        shard_factory, n_shards, granularity=granularity, **shard_kwargs
    )


@register(
    "multipath-ucb",
    description="Bandit over path pairs: duplicate/split a call across two paths.",
    schema=(
        schema_field("mode", "str", "duplicate"),
        schema_field("split_weight", "float", 0.5),
        schema_field("max_singles", "int", 4),
        schema_field("max_pairs", "int", 10),
        schema_field("epsilon", "float", 0.05),
        schema_field("exploration_coef", "float", 0.1),
        schema_field("granularity", "str", "as"),
        schema_field("name", "str | None", None),
    ),
    supports_checkpoint=True,
    supports_multipath=True,
    policy_class=MultipathBanditPolicy,
)
def _build_multipath_ucb(world, *, metric: str, seed: int, **overrides):
    return MultipathBanditPolicy(metric, seed=seed, **overrides)


@register(
    "multipath-random",
    description="Uniform-random path pairs: the multipath exploration floor.",
    schema=(
        schema_field("mode", "str", "duplicate"),
        schema_field("split_weight", "float", 0.5),
        schema_field("max_singles", "int", 4),
        schema_field("name", "str | None", None),
    ),
    supports_multipath=True,
    policy_class=RandomPathSetPolicy,
)
def _build_multipath_random(world, *, metric: str, seed: int, **overrides):
    return RandomPathSetPolicy(seed=seed, **overrides)
