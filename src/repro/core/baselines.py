"""Baselines: the default path, the oracle, and both §4.2 strawmen.

* :class:`DefaultPolicy` -- always the BGP default path (the paper's
  "default strategy" that all improvements are measured against).
* :class:`OraclePolicy` -- picks, per (pair, day), the option with the
  best *ground-truth mean* (§3.2); foresight no real system has.  With a
  budget it spends the relay quota on the calls with the largest true
  benefit.
* Strawman I (:func:`make_strawman_prediction`) -- pure prediction:
  always the argmin predicted option, no bandit refinement.
* Strawman II (:func:`make_strawman_exploration`) -- pure exploration:
  ε-greedy over *all* relaying options with no pruning.
* :func:`make_via` -- the full Algorithm 1 configuration.

Strawmen are thin configurations of :class:`~repro.core.policy.ViaPolicy`
so every strategy shares one code path and differs exactly where the
paper says it does.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.core.budget import BudgetGate
from repro.core.policy import ViaConfig, ViaPolicy
from repro.core.costs import make_cost_model
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption
from repro.telephony.call import Call

if TYPE_CHECKING:  # pragma: no cover
    from repro.netmodel.world import World

__all__ = [
    "DefaultPolicy",
    "OraclePolicy",
    "via_config",
    "make_via",
    "make_strawman_prediction",
    "make_strawman_exploration",
]


class DefaultPolicy:
    """Always use the default Internet path.

    NAT-blocked calls have no direct path; like pre-VIA Skype, they fall
    back to the first available relay purely for connectivity.
    """

    def __init__(self, name: str = "default") -> None:
        self.name = name

    def assign(self, call: Call, options: list[RelayOption]) -> RelayOption:
        if not call.direct_blocked:
            return DIRECT
        for option in options:
            if option.is_relayed:
                return option
        return DIRECT

    def observe(self, call: Call, option: RelayOption, metrics: PathMetrics) -> None:
        return None


class OraclePolicy:
    """Foresight baseline: best true-mean option per (AS pair, day) (§3.2).

    The oracle sees the world's ground truth for the current day -- the
    paper's oracle likewise knows each option's average performance for
    the source-destination pair on that day.  Under a budget it relays
    only calls whose *true* benefit clears the §4.6 percentile gate.
    """

    def __init__(
        self,
        world: "World",
        metric: str = "rtt_ms",
        *,
        budget: float = 1.0,
        name: str | None = None,
    ) -> None:
        self.world = world
        self.metric = metric
        self._cost = make_cost_model(metric)
        self.name = name or f"oracle[{metric}]"
        self._best_cache: dict[tuple[int, int, int], tuple[RelayOption, float]] = {}
        self._budget_gate: BudgetGate | None = None
        if budget < 1.0:
            self._budget_gate = BudgetGate(budget, aware=True)

    def assign(self, call: Call, options: list[RelayOption]) -> RelayOption:
        best, benefit = self._best_for(call, options)
        gate = self._budget_gate
        if gate is None:
            return best
        if best.is_relayed and gate.allows(benefit):
            gate.record(benefit, relayed=True)
            return best
        gate.record(benefit, relayed=False)
        return DIRECT

    def observe(self, call: Call, option: RelayOption, metrics: PathMetrics) -> None:
        return None

    def _best_for(
        self, call: Call, options: list[RelayOption]
    ) -> tuple[RelayOption, float]:
        """(best option, true benefit over direct) for the call's day.

        NAT-blocked calls see a different (direct-less) option set, so the
        cache is keyed on that flag as well.
        """
        a, b = call.as_pair
        flipped = call.src_asn > call.dst_asn
        cache_key = (a, b, call.day, call.direct_blocked)
        cached = self._best_cache.get(cache_key)
        if cached is None:
            canonical = [o.reversed() if flipped else o for o in options]
            best_cost = float("inf")
            best_opt = DIRECT
            direct_cost = float("inf")
            for option in canonical:
                cost = self._cost.call_cost(self.world.true_mean(a, b, option, call.day))
                if option is DIRECT or option == DIRECT:
                    direct_cost = cost
                if cost < best_cost:
                    best_cost = cost
                    best_opt = option
            cached = (best_opt, direct_cost - best_cost)
            self._best_cache[cache_key] = cached
        best_opt, benefit = cached
        return (best_opt.reversed() if flipped else best_opt), benefit


def via_config(
    metric: str = "rtt_ms",
    *,
    budget: float = 1.0,
    budget_aware: bool = True,
    granularity: str = "as",
    refresh_hours: float = 24.0,
    seed: int = 42,
    **overrides,
) -> ViaConfig:
    """The full Algorithm-1 configuration (dynamic top-k + modified UCB1).

    The one source of truth for what "the VIA configuration" means:
    :func:`make_via`, the policy registry's ``via`` family, and the
    deployment testbed all build their :class:`ViaConfig` here, so a
    config tweak lands everywhere at once.
    """
    config = ViaConfig(
        metric=metric,
        topk_mode="dynamic",
        selector="ucb",
        ucb_mode="via",
        budget=budget,
        budget_aware=budget_aware,
        granularity=granularity,  # type: ignore[arg-type]
        refresh_hours=refresh_hours,
        seed=seed,
    )
    if overrides:
        config = replace(config, **overrides)
    return config


def make_via(
    metric: str = "rtt_ms",
    *,
    inter_relay=None,
    budget: float = 1.0,
    budget_aware: bool = True,
    granularity: str = "as",
    refresh_hours: float = 24.0,
    seed: int = 42,
    cls: type[ViaPolicy] = ViaPolicy,
    name: str | None = None,
    **overrides,
) -> ViaPolicy:
    """The full VIA policy of Algorithm 1 (dynamic top-k + modified UCB1).

    ``cls`` swaps the concrete policy class (the registry's ``via-vector``
    entry passes :class:`~repro.core.policy.VectorizedViaPolicy`); ``name``
    overrides the default ``via[<metric>]`` display name.
    """
    config = via_config(
        metric,
        budget=budget,
        budget_aware=budget_aware,
        granularity=granularity,
        refresh_hours=refresh_hours,
        seed=seed,
        **overrides,
    )
    return cls(config, inter_relay=inter_relay, name=name or f"via[{metric}]")


def make_strawman_prediction(
    metric: str = "rtt_ms",
    *,
    inter_relay=None,
    seed: int = 43,
    **overrides,
) -> ViaPolicy:
    """Strawman I (§4.2): pure prediction -- argmin predicted mean.

    Keeps the same ε random measurement traffic as VIA so it has history
    to predict from (in the paper this history comes from the production
    trace), but never refines its choice with a bandit.
    """
    config = ViaConfig(metric=metric, topk_mode="argmin", seed=seed)
    if overrides:
        config = replace(config, **overrides)
    return ViaPolicy(config, inter_relay=inter_relay, name=f"strawman-prediction[{metric}]")


def make_strawman_exploration(
    metric: str = "rtt_ms",
    *,
    seed: int = 44,
    greedy_epsilon: float = 0.1,
    **overrides,
) -> ViaPolicy:
    """Strawman II (§4.2): pure exploration -- ε-greedy over all options.

    No prediction, no tomography, no pruning: the explorer must discover
    the per-pair option ranking from its own samples alone, which the
    skew and variance of §4.2 make slow and wasteful.
    """
    config = ViaConfig(
        metric=metric,
        topk_mode="all",
        selector="greedy",
        greedy_epsilon=greedy_epsilon,
        use_tomography=False,
        epsilon=0.0,  # its exploration lives in greedy_epsilon instead
        seed=seed,
    )
    if overrides:
        config = replace(config, **overrides)
    return ViaPolicy(config, inter_relay=None, name=f"strawman-exploration[{metric}]")
