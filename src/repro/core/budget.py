"""Budgeted relaying: §4.6 of the paper.

Operators cap the fraction of calls that may use the managed overlay.  The
budget-aware gate relays a call only when its *predicted benefit* (direct
minus best-relay predicted performance) lands in the top B percentile of
recently observed benefits -- so the budget is spent on the calls that
gain the most.  The budget-unaware variant (the Figure 16 strawman) relays
any call with positive predicted benefit until the cap binds.

Both variants enforce the hard cap with a running relayed-call share.
The module also provides :class:`RelayLoadTracker` for the *per-relay*
budget model §4.6 mentions as a variant: no single relay node may carry
more than a configured share of recent calls, spreading load across the
fleet.
"""

from __future__ import annotations

from collections import Counter, deque

import numpy as np

from repro.netmodel.options import RelayOption

__all__ = ["BudgetGate", "RelayLoadTracker"]


class BudgetGate:
    """Decides, per call, whether relaying is allowed under the budget.

    ``budget`` is the maximum fraction of calls relayed (1.0 = unlimited).
    ``aware`` selects the percentile-threshold strategy of §4.6; when
    False the gate is first-come-first-served on positive benefit.
    """

    def __init__(
        self,
        budget: float = 1.0,
        *,
        aware: bool = True,
        benefit_memory: int = 5000,
        min_history: int = 50,
    ) -> None:
        if not 0.0 <= budget <= 1.0:
            raise ValueError(f"budget must be in [0, 1]: {budget}")
        if benefit_memory < 1 or min_history < 1:
            raise ValueError("memory sizes must be positive")
        self.budget = budget
        self.aware = aware
        self._benefits: deque[float] = deque(maxlen=benefit_memory)
        self._min_history = min_history
        self._total_calls = 0
        self._relayed_calls = 0
        # The percentile over the benefit window is O(n log n); recompute
        # it every few records instead of per call.
        self._threshold_cache: float = 0.0
        self._threshold_stale = True
        self._records_since_refresh = 0
        self._refresh_every = max(1, min_history // 2)

    @property
    def relayed_fraction(self) -> float:
        """Fraction of calls relayed so far."""
        if self._total_calls == 0:
            return 0.0
        return self._relayed_calls / self._total_calls

    def threshold(self) -> float:
        """Current benefit threshold for relaying (aware mode).

        The (1 - B) quantile of recent predicted benefits: a call is
        relayed only if its benefit is in the top B percentile (§4.6).
        Before enough history accumulates, the threshold is 0 (any
        positive benefit qualifies) so the gate can bootstrap.
        """
        if not self.aware or self.budget >= 1.0:
            return 0.0
        if len(self._benefits) < self._min_history:
            return 0.0
        if self._threshold_stale:
            self._threshold_cache = float(
                np.quantile(np.asarray(self._benefits), 1.0 - self.budget)
            )
            self._threshold_stale = False
        return self._threshold_cache

    def allows(self, benefit: float | None) -> bool:
        """May this call be relayed?  (Does not commit -- see record().)

        ``benefit`` is the predicted improvement of the best relay over
        the direct path on the optimised metric; ``None`` means the
        predictor could not compare (no direct-path prediction), which we
        treat as relayable -- exploration needs to reach such pairs.
        """
        if self.budget <= 0.0:
            return False
        if self.budget >= 1.0 and not self.aware:
            return True
        # Hard cap first: never exceed the relayed-call share.
        if (
            self.budget < 1.0
            and self._total_calls > self._min_history
            and self.relayed_fraction >= self.budget
        ):
            return False
        if benefit is None:
            return True
        if benefit <= 0.0:
            return False
        return benefit >= self.threshold()

    def record(self, benefit: float | None, relayed: bool) -> None:
        """Account one call: its predicted benefit and the actual decision."""
        self._total_calls += 1
        if relayed:
            self._relayed_calls += 1
        if benefit is not None:
            self._benefits.append(benefit)
            self._records_since_refresh += 1
            if self._records_since_refresh >= self._refresh_every:
                self._threshold_stale = True
                self._records_since_refresh = 0


class RelayLoadTracker:
    """Per-relay load accounting over a sliding window of recent calls.

    ``cap`` is the maximum share of recent calls any single relay may
    carry (a transit call counts against both its relays).  The §4.6
    per-relay budget variant: keeps hotspots off individual relay nodes
    even when overall relaying is unconstrained.
    """

    def __init__(self, cap: float, window: int = 2000) -> None:
        if not 0.0 < cap <= 1.0:
            raise ValueError(f"cap must be in (0, 1]: {cap}")
        if window < 10:
            raise ValueError(f"window must be >= 10: {window}")
        self.cap = cap
        self.window = window
        self._recent: deque[tuple[int, ...]] = deque()
        self._counts: Counter[int] = Counter()

    def __len__(self) -> int:
        return len(self._recent)

    def load(self, relay_id: int) -> float:
        """Share of recent calls carried by one relay."""
        if not self._recent:
            return 0.0
        return self._counts.get(relay_id, 0) / len(self._recent)

    def would_exceed(self, option: RelayOption) -> bool:
        """Would assigning this option push any of its relays past the cap?

        Conservative only once the window has some history, so the first
        calls of a run are never all forced onto the direct path.
        """
        if len(self._recent) < max(20, self.window // 20):
            return False
        return any(self.load(relay_id) >= self.cap for relay_id in option.relay_ids())

    def record(self, option: RelayOption) -> None:
        """Account one assigned call (direct calls count in the denominator)."""
        relay_ids = option.relay_ids()
        self._recent.append(relay_ids)
        for relay_id in relay_ids:
            self._counts[relay_id] += 1
        while len(self._recent) > self.window:
            evicted = self._recent.popleft()
            for relay_id in evicted:
                self._counts[relay_id] -= 1
                if self._counts[relay_id] <= 0:
                    del self._counts[relay_id]

    def loads(self) -> dict[int, float]:
        """Current per-relay load shares (diagnostics)."""
        total = max(1, len(self._recent))
        return {relay_id: count / total for relay_id, count in self._counts.items()}
