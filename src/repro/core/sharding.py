"""Sharded (partitioned) controller: the §7 scalability question, measured.

The paper's discussion asks whether one logical controller can handle a
large service and points at partitioning (and C3-style split control) as
the likely answer.  Partitioning is not free, though: a shard only sees
the measurements of *its* pairs, so cross-pair learning -- tomography
above all -- loses coverage.

:class:`ShardedPolicy` models a K-way partitioned control plane: each
shard is an independent policy (e.g. a full
:class:`~repro.core.policy.ViaPolicy`), and calls are routed to shards by
a stable hash of their canonical pair key.  Comparing K = 1 against
larger K quantifies what partitioning costs in selection quality
(`benchmarks/bench_ext_sharded_controller.py`).

Two placement modes are supported (the "Balanced routing of random
calls" experiment):

* ``placement="hash"`` -- static consistent hashing via
  :func:`stable_shard_of`; stateless, so any process that knows
  ``n_shards`` routes identically (this is what the multi-process ring
  in :mod:`repro.deployment.ring` uses).
* ``placement="power_of_d"`` -- power-of-d-choices: the first time a
  pair is seen, ``d`` candidate shards are derived from its key and the
  least-loaded one wins; the choice is sticky so a pair's history never
  fragments.  Better balanced under skew, but stateful -- the placement
  table is part of :meth:`ShardedPolicy.state_dict`.

The class is a first-class policy: it checkpoints
(``state_dict``/``load_state_dict``), serves the vectorised batch hot
path (``assign_many``/``observe_many`` with group-by-shard dispatch,
bit-identical to the scalar loop), and participates in periodic refresh
(``refresh``/``n_refreshes``) and outage routing (``set_down_relays``)
like any single :class:`~repro.core.policy.ViaPolicy`.
"""

from __future__ import annotations

import hashlib
import logging
import math
from typing import Callable, Hashable, Sequence

from repro.core.history import _decode_key, _encode_key
from repro.core.keys import PairKeyer
from repro.core.policy import SelectionPolicy
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import RelayOption
from repro.telephony.call import Call

__all__ = [
    "ShardedPolicy",
    "stable_shard_of",
    "shard_candidates",
    "SHARDED_STATE_FORMAT",
    "PLACEMENT_MODES",
]

logger = logging.getLogger(__name__)

SHARDED_STATE_FORMAT = "via-sharded-policy-v1"

#: Supported shard-placement strategies.
PLACEMENT_MODES = ("hash", "power_of_d")


def stable_shard_of(pair_key: Hashable, n_shards: int) -> int:
    """Deterministic, platform-independent shard assignment.

    Uses blake2 over the repr of the canonical pair key so the mapping is
    stable across processes and Python hash randomisation.  Ring
    membership depends on this exact digest (see the golden-vector pins
    in ``tests/test_sharding.py``) -- changing it strands every stored
    pair on the wrong shard.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1: {n_shards}")
    digest = hashlib.blake2s(repr(pair_key).encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "big") % n_shards


def shard_candidates(pair_key: Hashable, n_shards: int, d: int) -> list[int]:
    """The ``d`` candidate shards a pair may be placed on (power-of-d).

    Candidate ``j`` is the stable hash of ``(j, pair_key)``, so the
    candidate set is deterministic across processes.  Duplicates are
    dropped (a pair whose candidates collide simply has fewer choices).
    """
    if d < 1:
        raise ValueError(f"d must be >= 1: {d}")
    seen: list[int] = []
    for j in range(d):
        shard = stable_shard_of((j, pair_key), n_shards)
        if shard not in seen:
            seen.append(shard)
    return seen


class ShardedPolicy:
    """A K-way partitioned control plane over independent shard policies.

    ``shard_factory(i)`` builds shard ``i``'s policy; shards never share
    state (that is the point).  Pair keys are computed at ``granularity``
    so both directions of a pair land on the same shard.
    """

    def __init__(
        self,
        shard_factory: Callable[[int], SelectionPolicy],
        n_shards: int,
        *,
        granularity: str = "as",
        name: str | None = None,
        placement: str = "hash",
        d_choices: int = 2,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1: {n_shards}")
        if placement not in PLACEMENT_MODES:
            raise ValueError(
                f"unknown placement {placement!r}; expected one of {PLACEMENT_MODES}"
            )
        if d_choices < 1:
            raise ValueError(f"d_choices must be >= 1: {d_choices}")
        self.shards: list[SelectionPolicy] = [shard_factory(i) for i in range(n_shards)]
        self.n_shards = n_shards
        self._keyer = PairKeyer(granularity)  # type: ignore[arg-type]
        self.granularity = self._keyer.granularity
        self.name = name or f"sharded[{n_shards}x{self.shards[0].name}]"
        self.shard_calls: list[int] = [0] * n_shards
        self.placement = placement
        self.d_choices = d_choices
        # Sticky power-of-d placements: pair_key -> shard index.  Unused
        # (and empty) under static hashing.
        self._placement: dict[Hashable, int] = {}
        self._warned_scalar_fallback = False

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _route(self, call: Call) -> int:
        """The shard that owns ``call``'s pair (placing it if new)."""
        pair_key = self._keyer.view(call).pair_key
        if self.placement == "hash":
            return stable_shard_of(pair_key, self.n_shards)
        shard = self._placement.get(pair_key)
        if shard is None:
            candidates = shard_candidates(pair_key, self.n_shards, self.d_choices)
            # min() is stable: ties go to the earliest candidate, which is
            # deterministic because the candidate order is.
            shard = min(candidates, key=lambda s: self.shard_calls[s])
            self._placement[pair_key] = shard
        return shard

    def _shard_for(self, call: Call) -> int:
        """Back-compat alias for :meth:`_route` (hash-mode semantics)."""
        return self._route(call)

    # ------------------------------------------------------------------
    # The scalar policy interface
    # ------------------------------------------------------------------

    def assign(self, call: Call, options: list[RelayOption]) -> RelayOption:
        shard = self._route(call)
        self.shard_calls[shard] += 1
        return self.shards[shard].assign(call, options)

    def observe(self, call: Call, option: RelayOption, metrics: PathMetrics) -> None:
        self.shards[self._route(call)].observe(call, option, metrics)

    # ------------------------------------------------------------------
    # Batch hot path: group-by-shard dispatch
    # ------------------------------------------------------------------

    def _group_for_assign(self, calls: Sequence[Call]) -> dict[int, list[int]]:
        """Route every call in arrival order, mutating load counters.

        Routing first -- in the original call order -- keeps power-of-d
        placement decisions bit-identical to the scalar loop, which
        interleaves placement and load accounting per call.
        """
        groups: dict[int, list[int]] = {}
        for i, call in enumerate(calls):
            shard = self._route(call)
            self.shard_calls[shard] += 1
            groups.setdefault(shard, []).append(i)
        return groups

    def _warn_scalar_fallback_once(self, shard_policy: SelectionPolicy) -> None:
        if not self._warned_scalar_fallback:
            self._warned_scalar_fallback = True
            logger.info(
                "sharded policy %s: shard policy %s has no assign_many/"
                "observe_many; batches are served by the scalar loop",
                self.name,
                getattr(shard_policy, "name", type(shard_policy).__name__),
            )

    def assign_many(
        self,
        calls: Sequence[Call],
        options_per_call: Sequence[list[RelayOption]],
    ) -> list[RelayOption]:
        """Batch assignment, bit-identical to the scalar ``assign`` loop.

        Calls are grouped by owning shard (routing in arrival order, so
        power-of-d placements match the scalar loop exactly), each group
        is served by the shard's own ``assign_many`` when it has one, and
        the choices are scattered back into call order.
        """
        if len(calls) != len(options_per_call):
            raise ValueError(
                f"calls and options_per_call length mismatch: "
                f"{len(calls)} != {len(options_per_call)}"
            )
        groups = self._group_for_assign(calls)
        choices: list[RelayOption | None] = [None] * len(calls)
        for shard, rows in groups.items():
            policy = self.shards[shard]
            batch_assign = getattr(policy, "assign_many", None)
            if batch_assign is not None:
                picked = batch_assign(
                    [calls[i] for i in rows], [options_per_call[i] for i in rows]
                )
                for i, choice in zip(rows, picked):
                    choices[i] = choice
            else:
                self._warn_scalar_fallback_once(policy)
                for i in rows:
                    choices[i] = policy.assign(calls[i], options_per_call[i])
        return choices  # type: ignore[return-value]

    def observe_many(
        self,
        calls: Sequence[Call],
        options: Sequence[RelayOption],
        metrics_list: Sequence[PathMetrics],
    ) -> None:
        """Batch observation with the same group-by-shard dispatch."""
        if not (len(calls) == len(options) == len(metrics_list)):
            raise ValueError(
                f"calls/options/metrics length mismatch: "
                f"{len(calls)}/{len(options)}/{len(metrics_list)}"
            )
        groups: dict[int, list[int]] = {}
        for i, call in enumerate(calls):
            groups.setdefault(self._route(call), []).append(i)
        for shard, rows in groups.items():
            policy = self.shards[shard]
            batch_observe = getattr(policy, "observe_many", None)
            if batch_observe is not None:
                batch_observe(
                    [calls[i] for i in rows],
                    [options[i] for i in rows],
                    [metrics_list[i] for i in rows],
                )
            else:
                self._warn_scalar_fallback_once(policy)
                for i in rows:
                    policy.observe(calls[i], options[i], metrics_list[i])

    # ------------------------------------------------------------------
    # Periodic refresh and outage routing (controller-loop interface)
    # ------------------------------------------------------------------

    def refresh(self, t_hours: float) -> int:
        """Roll every shard's window over to the period covering ``t_hours``.

        Returns the number of shards that actually refreshed (0 when all
        were already in the right period).  Shards without a ``refresh``
        method are skipped.
        """
        refreshed = 0
        for policy in self.shards:
            roll = getattr(policy, "refresh", None)
            if roll is not None and roll(t_hours):
                refreshed += 1
        return refreshed

    @property
    def n_refreshes(self) -> int:
        """Total refreshes across the fleet (sums the per-shard counters)."""
        return sum(getattr(policy, "n_refreshes", 0) for policy in self.shards)

    def set_down_relays(self, relay_ids) -> None:
        """Fan the down-relay set out to every shard that honours it."""
        for policy in self.shards:
            setter = getattr(policy, "set_down_relays", None)
            if setter is not None:
                setter(relay_ids)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Versioned fleet checkpoint: one entry per shard, keyed by index.

        The wrapper's own routing state (placement mode, sticky
        power-of-d placements, load counters) rides along so a restored
        fleet routes -- and therefore learns -- identically.
        """
        return {
            "format": SHARDED_STATE_FORMAT,
            "n_shards": self.n_shards,
            "granularity": self.granularity,
            "placement": self.placement,
            "d_choices": self.d_choices,
            "shard_calls": list(self.shard_calls),
            "placements": [
                [[_encode_key(side_a), _encode_key(side_b)], shard]
                for (side_a, side_b), shard in self._placement.items()
            ],
            "shards": {str(i): policy.state_dict() for i, policy in enumerate(self.shards)},
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore a :meth:`state_dict` checkpoint, validating topology.

        A checkpoint taken at a different ``n_shards`` or ``granularity``
        is rejected: the pair→shard mapping would silently change and
        every shard would be fed the wrong pairs.
        """
        fmt = payload.get("format")
        if fmt != SHARDED_STATE_FORMAT:
            raise ValueError(
                f"unrecognised sharded-policy state format: {fmt!r} "
                f"(expected {SHARDED_STATE_FORMAT!r})"
            )
        saved_shards = payload.get("n_shards")
        if saved_shards != self.n_shards:
            raise ValueError(
                f"checkpoint has n_shards={saved_shards!r}, this policy has "
                f"{self.n_shards}; refusing to remap pairs across a different ring"
            )
        saved_gran = payload.get("granularity")
        if saved_gran != self.granularity:
            raise ValueError(
                f"checkpoint granularity {saved_gran!r} != configured "
                f"{self.granularity!r}; pair keys would not match"
            )
        saved_placement = payload.get("placement", "hash")
        if saved_placement != self.placement:
            raise ValueError(
                f"checkpoint placement {saved_placement!r} != configured "
                f"{self.placement!r}"
            )
        states = payload.get("shards")
        if not isinstance(states, dict):
            raise ValueError("sharded-policy checkpoint missing 'shards' dict")
        missing = [str(i) for i in range(self.n_shards) if str(i) not in states]
        if missing:
            raise ValueError(f"sharded-policy checkpoint missing shard entries: {missing}")
        for i, policy in enumerate(self.shards):
            loader = getattr(policy, "load_state_dict", None)
            if loader is None:
                raise ValueError(
                    f"shard {i} policy {getattr(policy, 'name', policy)!r} "
                    "cannot load_state_dict"
                )
            loader(states[str(i)])
        saved_calls = payload.get("shard_calls", [0] * self.n_shards)
        if len(saved_calls) != self.n_shards:
            raise ValueError(
                f"shard_calls length {len(saved_calls)} != n_shards {self.n_shards}"
            )
        self.shard_calls = [int(c) for c in saved_calls]
        self._placement = {
            (_decode_key(sides[0]), _decode_key(sides[1])): int(shard)
            for sides, shard in payload.get("placements", [])
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def load_imbalance(self) -> float:
        """max/mean shard load -- 1.0 is perfectly balanced.

        An all-idle fleet has no defined balance; it returns
        ``float("nan")`` so dashboards cannot mistake "no traffic" for
        "perfectly balanced" (check with ``math.isnan``).
        """
        total = sum(self.shard_calls)
        if total == 0:
            return math.nan
        mean = total / self.n_shards
        return max(self.shard_calls) / mean
