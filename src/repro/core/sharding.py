"""Sharded (partitioned) controller: the §7 scalability question, measured.

The paper's discussion asks whether one logical controller can handle a
large service and points at partitioning (and C3-style split control) as
the likely answer.  Partitioning is not free, though: a shard only sees
the measurements of *its* pairs, so cross-pair learning -- tomography
above all -- loses coverage.

:class:`ShardedPolicy` models a K-way partitioned control plane: each
shard is an independent policy (e.g. a full
:class:`~repro.core.policy.ViaPolicy`), and calls are routed to shards by
a stable hash of their canonical pair key.  Comparing K = 1 against
larger K quantifies what partitioning costs in selection quality
(`benchmarks/bench_ext_sharded_controller.py`).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Hashable

from repro.core.keys import PairKeyer
from repro.core.policy import SelectionPolicy
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import RelayOption
from repro.telephony.call import Call

__all__ = ["ShardedPolicy", "stable_shard_of"]


def stable_shard_of(pair_key: Hashable, n_shards: int) -> int:
    """Deterministic, platform-independent shard assignment.

    Uses blake2 over the repr of the canonical pair key so the mapping is
    stable across processes and Python hash randomisation.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1: {n_shards}")
    digest = hashlib.blake2s(repr(pair_key).encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "big") % n_shards


class ShardedPolicy:
    """A K-way partitioned control plane over independent shard policies.

    ``shard_factory(i)`` builds shard ``i``'s policy; shards never share
    state (that is the point).  Pair keys are computed at ``granularity``
    so both directions of a pair land on the same shard.
    """

    def __init__(
        self,
        shard_factory: Callable[[int], SelectionPolicy],
        n_shards: int,
        *,
        granularity: str = "as",
        name: str | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1: {n_shards}")
        self.shards: list[SelectionPolicy] = [shard_factory(i) for i in range(n_shards)]
        self.n_shards = n_shards
        self._keyer = PairKeyer(granularity)  # type: ignore[arg-type]
        self.name = name or f"sharded[{n_shards}x{self.shards[0].name}]"
        self.shard_calls: list[int] = [0] * n_shards

    def _shard_for(self, call: Call) -> int:
        return stable_shard_of(self._keyer.view(call).pair_key, self.n_shards)

    def assign(self, call: Call, options: list[RelayOption]) -> RelayOption:
        shard = self._shard_for(call)
        self.shard_calls[shard] += 1
        return self.shards[shard].assign(call, options)

    def observe(self, call: Call, option: RelayOption, metrics: PathMetrics) -> None:
        self.shards[self._shard_for(call)].observe(call, option, metrics)

    def load_imbalance(self) -> float:
        """max/mean shard load -- 1.0 is perfectly balanced."""
        total = sum(self.shard_calls)
        if total == 0:
            return 1.0
        mean = total / self.n_shards
        return max(self.shard_calls) / mean
