"""Columnar batch representation for the assignment hot path.

The scalar :class:`~repro.core.policy.ViaPolicy` walks one call at a time
through Python dicts; at controller scale that caps throughput far below
the hardware.  This module supplies the structure-of-arrays types and the
RNG bookkeeping that let :meth:`ViaPolicy.assign_many` /
:meth:`ViaPolicy.observe_many` score thousands of calls per vector op
while staying **bit-identical** to the scalar path:

* :class:`CallBatch` / :class:`MetricsBatch` -- numpy columns extracted
  once per batch (time, endpoints, blocked flags; metric triples), with
  the original row objects kept for scalar fallback paths.
* :func:`epsilon_explorations` -- draws the per-call ε coins in vectorised
  blocks while consuming the underlying PCG64 bitstream in **exactly** the
  order the scalar loop would (coin, coin, ..., exploration pick, coin,
  ...), by rewinding the generator state past each overshoot.
* :class:`VectorizedViaPolicy` -- a ``ViaPolicy`` whose scalar
  ``assign``/``observe`` route through batches of one, so the PR 5
  differential harness (:func:`repro.verify.differential.run_differential`)
  can prove the vector implementation against the scalar oracle call for
  call.

The equivalence contract (documented in ``docs/performance.md``):
``assign_many(calls, options)`` equals ``[assign(c, o) ...]`` with no
interleaved observes, and ``observe_many`` equals the same observes run
sequentially -- same choices, same RNG draw order, same post-state bit
for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter

import numpy as np

from repro.netmodel.metrics import PathMetrics
from repro.telephony.call import Call

__all__ = [
    "CallBatch",
    "MetricsBatch",
    "epsilon_explorations",
    "VectorizedViaPolicy",
]


@dataclass(slots=True)
class CallBatch:
    """Structure-of-arrays view of a call sequence.

    The columns cover exactly what the ``as``-granularity fast path needs
    (time, AS endpoints, NAT flags); ``calls`` keeps the row objects so
    ineligible configurations can fall back to the scalar loop without a
    round trip.
    """

    calls: list[Call]
    t_hours: np.ndarray
    src_asn: np.ndarray
    dst_asn: np.ndarray
    direct_blocked: np.ndarray

    @classmethod
    def from_calls(cls, calls) -> "CallBatch":
        rows = list(calls)
        n = len(rows)
        # map(attrgetter) iterates at C speed -- measurably faster than a
        # generator expression on hot-path batch sizes.
        return cls(
            calls=rows,
            t_hours=np.fromiter(
                map(attrgetter("t_hours"), rows), dtype=np.float64, count=n
            ),
            src_asn=np.fromiter(
                map(attrgetter("src_asn"), rows), dtype=np.int64, count=n
            ),
            dst_asn=np.fromiter(
                map(attrgetter("dst_asn"), rows), dtype=np.int64, count=n
            ),
            direct_blocked=np.fromiter(
                map(attrgetter("direct_blocked"), rows), dtype=bool, count=n
            ),
        )

    def __len__(self) -> int:
        return len(self.calls)


def as_call_batch(calls) -> CallBatch:
    """Coerce a call sequence (or an existing batch) to a :class:`CallBatch`."""
    if isinstance(calls, CallBatch):
        return calls
    return CallBatch.from_calls(calls)


@dataclass(slots=True)
class MetricsBatch:
    """Columnar (rtt, loss, jitter) triples for a batch of outcomes.

    ``values`` is an ``(n, 3)`` float64 matrix in :data:`METRICS` order.
    When built :meth:`from_metrics` the original :class:`PathMetrics` rows
    are retained so fallback paths observe the very same objects.
    """

    values: np.ndarray
    rows: list[PathMetrics] | None = None

    @classmethod
    def from_metrics(cls, metrics_list) -> "MetricsBatch":
        rows = list(metrics_list)
        values = np.array(
            [(m.rtt_ms, m.loss_rate, m.jitter_ms) for m in rows], dtype=np.float64
        ).reshape(len(rows), 3)
        return cls(values=values, rows=rows)

    def row(self, i: int) -> PathMetrics:
        """The ``i``-th triple as a :class:`PathMetrics` value."""
        if self.rows is not None:
            return self.rows[i]
        return PathMetrics(
            rtt_ms=float(self.values[i, 0]),
            loss_rate=float(self.values[i, 1]),
            jitter_ms=float(self.values[i, 2]),
        )

    def iter_rows(self):
        if self.rows is not None:
            return iter(self.rows)
        return (self.row(i) for i in range(len(self.values)))

    def __len__(self) -> int:
        return len(self.values)


def as_metrics_batch(metrics_list) -> MetricsBatch:
    """Coerce a metrics sequence (or an existing batch) to a :class:`MetricsBatch`."""
    if isinstance(metrics_list, MetricsBatch):
        return metrics_list
    return MetricsBatch.from_metrics(metrics_list)


def epsilon_explorations(
    rng: np.random.Generator, epsilon: float, lens: list[int]
) -> list[tuple[int, int]]:
    """ε-exploration draws for a batch, with scalar-identical RNG usage.

    The scalar loop draws, per call, one uniform coin (``rng.random()``)
    and -- when the coin lands under ``epsilon`` -- one bounded integer
    (``rng.integers(n_options)``).  This helper reproduces that draw
    sequence exactly while drawing the coins in vectorised blocks: it
    speculatively draws all remaining coins at once, and on the first
    exploration hit rewinds the generator (PCG64 state is copyable) and
    re-draws precisely the coins the scalar loop would have consumed up to
    and including the hit, then the hit's integer pick.

    Returns ``(batch_offset, option_index)`` pairs in batch order.  After
    the call the generator state equals the scalar loop's final state bit
    for bit (property-tested in ``tests/test_vector.py``).
    """
    n = len(lens)
    picks: list[tuple[int, int]] = []
    i = 0
    bit_generator = rng.bit_generator
    # Speculate in bounded blocks: a fully-missed block consumes exactly
    # its coins (no rewind needed), so the per-hit waste is capped at one
    # block instead of the whole remaining batch.
    block_cap = 512
    while i < n:
        block = min(n - i, block_cap)
        checkpoint = bit_generator.state
        coins = rng.random(block)
        hits = np.nonzero(coins < epsilon)[0]
        if hits.size == 0:
            i += block
            continue
        k = int(hits[0])
        # Rewind by restoring the checkpoint -- NOT via ``advance()``,
        # which would drop the generator's buffered uint32 half-word and
        # desynchronise the next bounded-integer draw -- then consume
        # exactly what the scalar loop would have: k + 1 coins (the misses
        # plus the hit), then the bounded pick.
        bit_generator.state = checkpoint
        rng.random(k + 1)
        picks.append((i + k, int(rng.integers(lens[i + k]))))
        i += k + 1
    return picks


def __getattr__(name: str):
    # VectorizedViaPolicy subclasses ViaPolicy, which itself imports this
    # module -- resolve lazily to keep the import graph acyclic.
    if name == "VectorizedViaPolicy":
        from repro.core.policy import VectorizedViaPolicy

        return VectorizedViaPolicy
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
