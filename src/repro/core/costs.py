"""Cost models: what the relay selector minimises.

The paper optimises each network metric individually (Q(c, r) = the
metric's value).  :class:`MetricCost` implements that.  As an extension we
also provide :class:`MosCost`, which minimises E-model impairment
(``4.5 - MOS``) -- optimising user-perceived quality directly rather than
one network metric at a time.

A cost model must supply, for the pruning and bandit stages, a point
estimate plus optimistic/pessimistic bounds derived from a
:class:`~repro.core.predictor.Prediction`.  For :class:`MosCost` this uses
the monotonicity of MOS in each metric: the optimistic cost evaluates MOS
at all three lower confidence bounds, the pessimistic one at all three
upper bounds.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.core.predictor import Prediction, metric_index
from repro.netmodel.metrics import METRICS, PathMetrics
from repro.telephony.codec import DEFAULT_CODEC, CodecSpec
from repro.telephony.quality import mos_from_network

__all__ = ["CostModel", "MetricCost", "MosCost", "make_cost_model", "COST_MODEL_NAMES"]

#: Valid values for ``ViaConfig.metric``.
COST_MODEL_NAMES: tuple[str, ...] = (*METRICS, "mos")


class CostModel(Protocol):
    """What Algorithm 1 needs from a cost function (lower = better)."""

    name: str

    def call_cost(self, metrics: PathMetrics) -> float:
        """Realised cost of one completed call."""
        ...

    def call_cost_many(self, values: np.ndarray) -> np.ndarray:
        """Realised costs of a batch of (rtt, loss, jitter) rows.

        Must equal ``[call_cost(row_i) for i]`` value for value -- the
        vector observe path feeds the results straight into bandit sums.
        """
        ...

    def predicted(self, prediction: Prediction) -> float:
        """Point-estimate cost of a prediction."""
        ...

    def predicted_lower(self, prediction: Prediction) -> float:
        """Optimistic (95% lower) cost bound."""
        ...

    def predicted_upper(self, prediction: Prediction) -> float:
        """Pessimistic (95% upper) cost bound."""
        ...


class MetricCost:
    """The paper's per-metric objective: Q(c, r) = metric value."""

    def __init__(self, metric: str) -> None:
        self.name = metric
        self._idx = metric_index(metric)

    def call_cost(self, metrics: PathMetrics) -> float:
        return metrics.get(self.name)

    def call_cost_many(self, values: np.ndarray) -> np.ndarray:
        """One column slice: the metric's value per row, exactly as stored."""
        return np.asarray(values, dtype=np.float64)[:, self._idx]

    def predicted(self, prediction: Prediction) -> float:
        return prediction.value(self._idx)

    def predicted_lower(self, prediction: Prediction) -> float:
        return prediction.lower(self._idx)

    def predicted_upper(self, prediction: Prediction) -> float:
        return prediction.upper(self._idx)


def _triple_to_metrics(values: np.ndarray) -> PathMetrics:
    """Clamp a (rtt, loss, jitter) vector into a valid PathMetrics."""
    return PathMetrics(
        rtt_ms=float(max(0.0, values[0])),
        loss_rate=float(np.clip(values[1], 0.0, 1.0)),
        jitter_ms=float(max(0.0, values[2])),
    )


class MosCost:
    """Impairment objective: minimise ``4.5 - MOS`` (extension).

    MOS is monotone non-increasing in each of RTT, loss and jitter, so
    bounds follow from evaluating the E-model at the elementwise
    confidence-bound triples.
    """

    _Z95 = 1.96

    def __init__(self, codec: CodecSpec = DEFAULT_CODEC) -> None:
        self.name = "mos"
        self.codec = codec

    def call_cost(self, metrics: PathMetrics) -> float:
        return 4.5 - mos_from_network(metrics, self.codec)

    def call_cost_many(self, values: np.ndarray) -> np.ndarray:
        """Row-wise E-model evaluation.

        The E-model is piecewise and branch-heavy, so this runs the scalar
        formula per row rather than risking ulp drift from a re-derived
        vector form -- bit-identical by construction, and still amortises
        everything around it in the vector observe path.
        """
        values = np.asarray(values, dtype=np.float64)
        return np.fromiter(
            (self.call_cost(_triple_to_metrics(row)) for row in values),
            dtype=np.float64,
            count=len(values),
        )

    def predicted(self, prediction: Prediction) -> float:
        return self.call_cost(_triple_to_metrics(prediction.mean))

    def predicted_lower(self, prediction: Prediction) -> float:
        optimistic = prediction.mean - self._Z95 * prediction.sem
        return self.call_cost(_triple_to_metrics(optimistic))

    def predicted_upper(self, prediction: Prediction) -> float:
        pessimistic = prediction.mean + self._Z95 * prediction.sem
        return self.call_cost(_triple_to_metrics(pessimistic))


def make_cost_model(metric: str, codec: CodecSpec = DEFAULT_CODEC) -> CostModel:
    """Resolve a ``ViaConfig.metric`` value to its cost model."""
    if metric in METRICS:
        return MetricCost(metric)
    if metric == "mos":
        return MosCost(codec)
    raise KeyError(f"unknown cost model {metric!r}; expected one of {COST_MODEL_NAMES}")
