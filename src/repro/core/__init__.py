"""VIA relay selection: prediction-guided exploration (the paper's core).

The pipeline of Figure 10:

1. :mod:`repro.core.history` -- per (pair, option, window) performance
   aggregation from completed calls,
2. :mod:`repro.core.tomography` -- linear network tomography expanding
   coverage to unseen relay paths (Figure 11),
3. :mod:`repro.core.predictor` + :mod:`repro.core.topk` -- mean/SEM
   prediction with 95% confidence bounds and the dynamic top-k pruning of
   Algorithm 2,
4. :mod:`repro.core.bandit` -- the modified UCB1 exploration-exploitation
   of Algorithm 3, and
5. :mod:`repro.core.policy` -- Algorithm 1 tying it all together, with the
   budgeted relaying of §4.6.

:mod:`repro.core.baselines` provides the oracle and both strawmen of §4.2.
"""

from repro.core.keys import Granularity, PairKeyer, PairView
from repro.core.history import CallHistory, RunningStat
from repro.core.tomography import TomographyModel
from repro.core.predictor import Prediction, Predictor
from repro.core.topk import dynamic_top_k, fixed_top_k
from repro.core.bandit import UCB1Explorer
from repro.core.budget import BudgetGate, RelayLoadTracker
from repro.core.policy import SelectionPolicy, ViaConfig, ViaPolicy, make_policy
from repro.core.probing import ActiveProber, ProbeRequest
from repro.core.caching import CachedAssignmentPolicy
from repro.core.coordinates import CoordinateSystem, NodeCoordinate, VivaldiConfig
from repro.core.costs import CostModel, MetricCost, MosCost, make_cost_model
from repro.core.hybrid import HybridReactivePolicy, ProbePlan, blend_call_metrics
from repro.core.baselines import (
    DefaultPolicy,
    OraclePolicy,
    make_strawman_exploration,
    make_strawman_prediction,
    make_via,
    via_config,
)
from repro.core.multipath import (
    MultipathBanditPolicy,
    MultipathPolicy,
    PathSet,
    RandomPathSetPolicy,
    combine_duplicate,
    combine_split,
    combined_metrics,
)
from repro.core.sharding import ShardedPolicy
from repro.core.registry import (
    REGISTRY,
    ConfigField,
    PolicyEntry,
    PolicyRegistry,
    UnknownPolicyError,
    build_policy,
    policy_names,
    register,
    world_inter_relay,
)

__all__ = [
    "Granularity",
    "PairKeyer",
    "PairView",
    "CallHistory",
    "RunningStat",
    "TomographyModel",
    "Prediction",
    "Predictor",
    "dynamic_top_k",
    "fixed_top_k",
    "UCB1Explorer",
    "BudgetGate",
    "RelayLoadTracker",
    "CachedAssignmentPolicy",
    "CoordinateSystem",
    "NodeCoordinate",
    "VivaldiConfig",
    "CostModel",
    "MetricCost",
    "MosCost",
    "make_cost_model",
    "SelectionPolicy",
    "ViaConfig",
    "ViaPolicy",
    "make_policy",
    "ActiveProber",
    "ProbeRequest",
    "HybridReactivePolicy",
    "ProbePlan",
    "blend_call_metrics",
    "DefaultPolicy",
    "OraclePolicy",
    "make_via",
    "via_config",
    "make_strawman_prediction",
    "make_strawman_exploration",
    "PathSet",
    "MultipathPolicy",
    "MultipathBanditPolicy",
    "RandomPathSetPolicy",
    "combine_duplicate",
    "combine_split",
    "combined_metrics",
    "ShardedPolicy",
    "REGISTRY",
    "ConfigField",
    "PolicyEntry",
    "PolicyRegistry",
    "UnknownPolicyError",
    "build_policy",
    "policy_names",
    "register",
    "world_inter_relay",
]
