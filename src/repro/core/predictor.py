"""Performance prediction with confidence bounds: stage 3 input (§4.4).

For every (pair, relaying option) the :class:`Predictor` produces a
:class:`Prediction` -- per-metric mean and standard error, from which the
95% bounds ``Pred_lower`` / ``Pred_upper`` of the paper follow.  Sources,
in order of preference:

1. **direct history** -- the pair actually used this option in the last
   window and has enough samples;
2. **tomography** -- the path-stitched estimate (relayed options only),
   with SEM inflated to reflect the indirection;
3. **coordinates** (optional extension) -- for the *direct* path of a
   never-seen pair, a Vivaldi embedding supplies the RTT while loss and
   jitter fall back to the window's population means, all with wide
   uncertainty;
4. otherwise ``None`` -- the option is unpredictable this window (it can
   still be reached by the ε general-exploration arm of Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.core.history import CallHistory, RunningStat
from repro.core.tomography import TomographyModel
from repro.netmodel.metrics import METRICS
from repro.netmodel.options import DIRECT, RelayOption
from repro.core.coordinates import CoordinateSystem

__all__ = ["Prediction", "PredictionTable", "Predictor"]

_Z95 = 1.96


@dataclass(frozen=True, slots=True)
class Prediction:
    """Mean and SEM per metric, with the paper's 95% bounds.

    ``mean``/``sem`` are length-3 arrays ordered (rtt_ms, loss_rate,
    jitter_ms).  ``n`` is the number of underlying direct samples (0 for
    pure tomography predictions); ``source`` records provenance.
    """

    mean: np.ndarray
    sem: np.ndarray
    n: int
    source: str

    def lower(self, metric_idx: int) -> float:
        """``Pred_lower``: mean - 1.96 SEM (§4.4)."""
        return float(self.mean[metric_idx] - _Z95 * self.sem[metric_idx])

    def upper(self, metric_idx: int) -> float:
        """``Pred_upper``: mean + 1.96 SEM (§4.4)."""
        return float(self.mean[metric_idx] + _Z95 * self.sem[metric_idx])

    def value(self, metric_idx: int) -> float:
        return float(self.mean[metric_idx])


@dataclass(frozen=True, slots=True)
class PredictionTable:
    """Columnar view of one pair's predictions (the vector-path layout).

    Rows are the *predictable* options in dict order, matching
    :meth:`Predictor.predict_all`; ``mean``/``sem`` are ``(k, 3)``
    matrices, ``n`` the per-row direct-sample counts.  ``row`` round-trips
    to the scalar :class:`Prediction` bit for bit (property-tested in
    ``tests/test_vector.py``), so consumers can move between layouts
    without numeric drift.
    """

    options: tuple[RelayOption, ...]
    mean: np.ndarray
    sem: np.ndarray
    n: np.ndarray
    sources: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.options)

    def lower(self) -> np.ndarray:
        """``Pred_lower`` for every row: mean - 1.96 SEM, as a (k, 3) matrix."""
        return self.mean - _Z95 * self.sem

    def upper(self) -> np.ndarray:
        """``Pred_upper`` for every row: mean + 1.96 SEM, as a (k, 3) matrix."""
        return self.mean + _Z95 * self.sem

    def row(self, i: int) -> Prediction:
        """Row ``i`` as a scalar :class:`Prediction` (same arrays, zero copy)."""
        return Prediction(
            mean=self.mean[i], sem=self.sem[i], n=int(self.n[i]), source=self.sources[i]
        )

    def as_dict(self) -> dict[RelayOption, Prediction]:
        """The scalar-path ``{option: Prediction}`` form of this table."""
        return {option: self.row(i) for i, option in enumerate(self.options)}

    @classmethod
    def from_predictions(
        cls, predictions: dict[RelayOption, Prediction]
    ) -> "PredictionTable":
        options = tuple(predictions)
        k = len(options)
        mean = np.empty((k, len(METRICS)))
        sem = np.empty((k, len(METRICS)))
        n = np.empty(k, dtype=np.int64)
        sources = []
        for i, option in enumerate(options):
            p = predictions[option]
            mean[i] = p.mean
            sem[i] = p.sem
            n[i] = p.n
            sources.append(p.source)
        return cls(options=options, mean=mean, sem=sem, n=n, sources=tuple(sources))


def metric_index(metric: str) -> int:
    """Index of a metric name in prediction arrays (rtt=0, loss=1, jitter=2)."""
    try:
        return METRICS.index(metric)
    except ValueError:
        raise KeyError(f"unknown metric {metric!r}; expected one of {METRICS}") from None


class Predictor:
    """Window-scoped prediction from history, tomography and coordinates.

    Built once per refresh period over the *previous* window's data (the
    paper refreshes stages 2-3 every T = 24 h).  ``min_direct_samples``
    gates how many same-pair samples are needed before history is trusted
    over tomography; ``sem_rel_floor`` keeps tiny samples from producing
    overconfident (near-zero) confidence intervals.
    """

    def __init__(
        self,
        history: CallHistory,
        window: int,
        *,
        tomography: TomographyModel | None = None,
        coordinates: "CoordinateSystem | None" = None,
        min_direct_samples: int = 3,
        sem_rel_floor: float = 0.05,
        tomography_sem_inflation: float = 1.5,
        coordinate_rel_sem: float = 0.30,
    ) -> None:
        if min_direct_samples < 1:
            raise ValueError("min_direct_samples must be >= 1")
        self._history = history
        self._window = window
        self._tomography = tomography
        self._coordinates = coordinates
        self._min_direct = min_direct_samples
        self._sem_rel_floor = sem_rel_floor
        self._tomo_inflation = tomography_sem_inflation
        self._coord_rel_sem = coordinate_rel_sem
        self._cache: dict[tuple[Hashable, RelayOption], Prediction | None] = {}
        self._direct_prior: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def window(self) -> int:
        return self._window

    def predict(
        self, pair_key: tuple[Hashable, Hashable], option: RelayOption
    ) -> Prediction | None:
        """Prediction for one (canonical pair, canonical option), or None."""
        cache_key = (pair_key, option)
        if cache_key in self._cache:
            return self._cache[cache_key]
        prediction = self._predict_uncached(pair_key, option)
        self._cache[cache_key] = prediction
        return prediction

    def _predict_uncached(
        self, pair_key: tuple[Hashable, Hashable], option: RelayOption
    ) -> Prediction | None:
        stat = self._history.stats(pair_key, option, self._window)
        if stat is not None and stat.count >= self._min_direct:
            return self._from_history(stat)
        if self._tomography is not None:
            side_s, side_d = pair_key
            stitched = self._tomography.predict(side_s, side_d, option)
            if stitched is not None:
                mean, sem = stitched
                sem = self._floor_sem(mean, sem * self._tomo_inflation)
                return Prediction(mean=mean, sem=sem, n=0, source="tomography")
        # Thin direct history is still better than nothing when tomography
        # cannot reach the option (e.g. the direct path).
        if stat is not None and stat.count >= 1:
            return self._from_history(stat, thin=True)
        if self._coordinates is not None and option == DIRECT:
            return self._from_coordinates(pair_key)
        return None

    def _from_coordinates(
        self, pair_key: tuple[Hashable, Hashable]
    ) -> Prediction | None:
        """Direct-path fallback from the Vivaldi embedding (extension).

        The embedding supplies RTT; loss and jitter come from the window's
        direct-path population means.  Everything carries wide uncertainty
        so the bandit treats the option as worth verifying, not trusting.
        """
        assert self._coordinates is not None
        side_s, side_d = pair_key
        rtt = self._coordinates.estimate_rtt(side_s, side_d)
        if rtt is None:
            return None
        prior = self._direct_population_prior()
        if prior is None:
            return None
        prior_mean, prior_sem = prior
        mean = np.array([rtt, prior_mean[1], prior_mean[2]])
        confidence = self._coordinates.estimation_confidence(side_s, side_d) or 1.0
        rtt_sem = max(self._coord_rel_sem, confidence) * rtt
        sem = np.array([rtt_sem, prior_sem[1], prior_sem[2]])
        return Prediction(mean=mean, sem=self._floor_sem(mean, sem), n=0, source="coordinates")

    def _direct_population_prior(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Window-wide mean/spread of direct-path metrics (weak prior)."""
        if self._direct_prior is None:
            totals = RunningStat()
            for (_pair, option), stat in self._history.window_items(self._window):
                if option == DIRECT and stat.count > 0:
                    totals.push(stat.mean_metrics())
            if totals.count < 5:
                return None
            mean = totals.mean
            spread = np.sqrt(totals.variance())
            self._direct_prior = (mean, np.maximum(spread, 0.5 * np.abs(mean)))
        return self._direct_prior

    def _from_history(self, stat: RunningStat, thin: bool = False) -> Prediction:
        mean = stat.mean
        sem = stat.sem()
        if thin:
            # One or two samples: widen uncertainty substantially.
            sem = np.maximum(sem, 0.5 * np.abs(mean))
        sem = self._floor_sem(mean, sem)
        return Prediction(
            mean=mean, sem=sem, n=stat.count, source="history-thin" if thin else "history"
        )

    def _floor_sem(self, mean: np.ndarray, sem: np.ndarray) -> np.ndarray:
        return np.maximum(sem, self._sem_rel_floor * np.abs(mean) + 1e-9)

    def predict_all(
        self,
        pair_key: tuple[Hashable, Hashable],
        options: list[RelayOption],
    ) -> dict[RelayOption, Prediction]:
        """Predictions for every predictable option of a pair."""
        result: dict[RelayOption, Prediction] = {}
        for option in options:
            prediction = self.predict(pair_key, option)
            if prediction is not None:
                result[option] = prediction
        return result

    def predict_table(
        self,
        pair_key: tuple[Hashable, Hashable],
        options: list[RelayOption],
    ) -> PredictionTable:
        """Columnar :class:`PredictionTable` over the predictable options.

        Same rows as :meth:`predict_all` (and the same per-option cache),
        laid out as matrices for vectorised consumers.
        """
        return PredictionTable.from_predictions(self.predict_all(pair_key, options))
