"""Dynamic top-k pruning: Algorithm 2 of the paper.

The top-k set is the *minimal* set of relaying options such that the lower
95% confidence bound of every option outside the set exceeds the upper
bound of every option inside -- i.e. everything pruned is, with high
confidence, worse than everything kept.  k therefore adapts to prediction
certainty: tight confidence intervals yield small k, noisy ones widen the
candidate set for the bandit.

The generic entry points take a :class:`~repro.core.costs.CostModel`
(supporting both per-metric and MOS objectives); the ``metric_idx``
variants keep the paper's plain per-metric interface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.predictor import Prediction
from repro.netmodel.options import RelayOption

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.costs import CostModel

__all__ = [
    "dynamic_top_k",
    "fixed_top_k",
    "dynamic_top_k_cost",
    "fixed_top_k_cost",
    "top_k_from_bounds",
]


def top_k_from_bounds(
    lowers: np.ndarray,
    uppers: np.ndarray,
    means: np.ndarray,
    *,
    max_k: int | None = None,
) -> np.ndarray:
    """Algorithm 2 on columnar bounds: indices kept, best-predicted first.

    The vectorised core shared by every top-k entry point.  Options are
    walked by ascending lower bound (stable order, so ties resolve exactly
    like the scalar ``sorted`` walk did); the kept set is the prefix up to
    the first option whose lower bound clears the running maximum upper
    bound of everything already kept.  The survivors are re-ranked by
    predicted mean (stable again) and optionally capped at ``max_k``.

    Equivalence with the historical scalar walk is enforced by the PR 5
    oracle (:func:`repro.verify.oracles.oracle_dynamic_top_k`) through
    ``run_differential`` and by hypothesis tests in ``tests/test_vector.py``.
    """
    lowers = np.asarray(lowers, dtype=np.float64)
    uppers = np.asarray(uppers, dtype=np.float64)
    means = np.asarray(means, dtype=np.float64)
    if not len(lowers):
        return np.empty(0, dtype=np.int64)
    order = np.argsort(lowers, kind="stable")
    sorted_lowers = lowers[order]
    running_upper = np.maximum.accumulate(uppers[order])
    breaks = np.nonzero(sorted_lowers[1:] > running_upper[:-1])[0]
    cut = int(breaks[0]) + 1 if breaks.size else len(order)
    kept = order[:cut]
    kept = kept[np.argsort(means[kept], kind="stable")]
    if max_k is not None and len(kept) > max_k:
        kept = kept[:max_k]
    return kept


def _cost_columns(
    options: list[RelayOption],
    predictions: dict[RelayOption, Prediction],
    cost_model: "CostModel",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(lower, upper, mean) cost columns for ``options``, in order."""
    n = len(options)
    lowers = np.fromiter(
        (cost_model.predicted_lower(predictions[o]) for o in options),
        dtype=np.float64,
        count=n,
    )
    uppers = np.fromiter(
        (cost_model.predicted_upper(predictions[o]) for o in options),
        dtype=np.float64,
        count=n,
    )
    means = np.fromiter(
        (cost_model.predicted(predictions[o]) for o in options),
        dtype=np.float64,
        count=n,
    )
    return lowers, uppers, means


def dynamic_top_k_cost(
    predictions: dict[RelayOption, Prediction],
    cost_model: "CostModel",
    *,
    max_k: int | None = None,
) -> list[RelayOption]:
    """Algorithm 2: minimal confident top set, best predicted cost first.

    Columnar since PR 7: the bounds are extracted once into numpy columns
    and the prefix walk runs as vector ops (:func:`top_k_from_bounds`).
    Option order ties break on dict insertion order, exactly as the
    historical ``sorted``-based walk did.  ``max_k`` optionally caps the
    set size (keeping the best predicted costs) to bound bandit width on
    very noisy pairs.
    """
    if not predictions:
        return []
    options = list(predictions)
    lowers, uppers, means = _cost_columns(options, predictions, cost_model)
    kept = top_k_from_bounds(lowers, uppers, means, max_k=max_k)
    return [options[i] for i in kept.tolist()]


def fixed_top_k_cost(
    predictions: dict[RelayOption, Prediction],
    cost_model: "CostModel",
    k: int,
) -> list[RelayOption]:
    """The fixed-k ablation of Figure 15: best k predicted costs."""
    if k < 1:
        raise ValueError(f"k must be >= 1: {k}")
    options = list(predictions)
    means = np.fromiter(
        (cost_model.predicted(predictions[o]) for o in options),
        dtype=np.float64,
        count=len(options),
    )
    ranked = np.argsort(means, kind="stable")[:k]
    return [options[i] for i in ranked.tolist()]


def dynamic_top_k(
    predictions: dict[RelayOption, Prediction],
    metric_idx: int,
    *,
    max_k: int | None = None,
) -> list[RelayOption]:
    """Per-metric-index convenience wrapper over :func:`dynamic_top_k_cost`."""
    return dynamic_top_k_cost(predictions, _index_cost(metric_idx), max_k=max_k)


def fixed_top_k(
    predictions: dict[RelayOption, Prediction],
    metric_idx: int,
    k: int,
) -> list[RelayOption]:
    """Per-metric-index convenience wrapper over :func:`fixed_top_k_cost`."""
    return fixed_top_k_cost(predictions, _index_cost(metric_idx), k)


class _index_cost:  # noqa: N801 - tiny adapter, used like a function
    """Adapter giving raw metric-index predictions the CostModel shape."""

    def __init__(self, metric_idx: int) -> None:
        from repro.netmodel.metrics import METRICS

        self.name = METRICS[metric_idx]
        self._idx = metric_idx

    def call_cost(self, metrics) -> float:
        return metrics.get(self.name)

    def predicted(self, prediction: Prediction) -> float:
        return prediction.value(self._idx)

    def predicted_lower(self, prediction: Prediction) -> float:
        return prediction.lower(self._idx)

    def predicted_upper(self, prediction: Prediction) -> float:
        return prediction.upper(self._idx)
