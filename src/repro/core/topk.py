"""Dynamic top-k pruning: Algorithm 2 of the paper.

The top-k set is the *minimal* set of relaying options such that the lower
95% confidence bound of every option outside the set exceeds the upper
bound of every option inside -- i.e. everything pruned is, with high
confidence, worse than everything kept.  k therefore adapts to prediction
certainty: tight confidence intervals yield small k, noisy ones widen the
candidate set for the bandit.

The generic entry points take a :class:`~repro.core.costs.CostModel`
(supporting both per-metric and MOS objectives); the ``metric_idx``
variants keep the paper's plain per-metric interface.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.predictor import Prediction
from repro.netmodel.options import RelayOption

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.costs import CostModel

__all__ = ["dynamic_top_k", "fixed_top_k", "dynamic_top_k_cost", "fixed_top_k_cost"]


def dynamic_top_k_cost(
    predictions: dict[RelayOption, Prediction],
    cost_model: "CostModel",
    *,
    max_k: int | None = None,
) -> list[RelayOption]:
    """Algorithm 2: minimal confident top set, best predicted cost first.

    Walks options by ascending lower cost bound, tracking the maximum
    upper bound of the set built so far; the first option whose lower
    bound clears that maximum -- and, because of the ordering, every later
    option too -- can be confidently excluded.  ``max_k`` optionally caps
    the set size (keeping the best predicted costs) to bound bandit width
    on very noisy pairs.
    """
    if not predictions:
        return []
    by_lower = sorted(
        predictions.items(), key=lambda item: cost_model.predicted_lower(item[1])
    )
    kept: list[RelayOption] = [by_lower[0][0]]
    max_upper = cost_model.predicted_upper(by_lower[0][1])
    for option, prediction in by_lower[1:]:
        if cost_model.predicted_lower(prediction) > max_upper:
            break
        kept.append(option)
        max_upper = max(max_upper, cost_model.predicted_upper(prediction))
    kept.sort(key=lambda opt: cost_model.predicted(predictions[opt]))
    if max_k is not None and len(kept) > max_k:
        kept = kept[:max_k]
    return kept


def fixed_top_k_cost(
    predictions: dict[RelayOption, Prediction],
    cost_model: "CostModel",
    k: int,
) -> list[RelayOption]:
    """The fixed-k ablation of Figure 15: best k predicted costs."""
    if k < 1:
        raise ValueError(f"k must be >= 1: {k}")
    ranked = sorted(predictions, key=lambda opt: cost_model.predicted(predictions[opt]))
    return ranked[:k]


def dynamic_top_k(
    predictions: dict[RelayOption, Prediction],
    metric_idx: int,
    *,
    max_k: int | None = None,
) -> list[RelayOption]:
    """Per-metric-index convenience wrapper over :func:`dynamic_top_k_cost`."""
    return dynamic_top_k_cost(predictions, _index_cost(metric_idx), max_k=max_k)


def fixed_top_k(
    predictions: dict[RelayOption, Prediction],
    metric_idx: int,
    k: int,
) -> list[RelayOption]:
    """Per-metric-index convenience wrapper over :func:`fixed_top_k_cost`."""
    return fixed_top_k_cost(predictions, _index_cost(metric_idx), k)


class _index_cost:  # noqa: N801 - tiny adapter, used like a function
    """Adapter giving raw metric-index predictions the CostModel shape."""

    def __init__(self, metric_idx: int) -> None:
        from repro.netmodel.metrics import METRICS

        self.name = METRICS[metric_idx]
        self._idx = metric_idx

    def call_cost(self, metrics) -> float:
        return metrics.get(self.name)

    def predicted(self, prediction: Prediction) -> float:
        return prediction.value(self._idx)

    def predicted_lower(self, prediction: Prediction) -> float:
        return prediction.lower(self._idx)

    def predicted_upper(self, prediction: Prediction) -> float:
        return prediction.upper(self._idx)
