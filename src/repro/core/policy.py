"""Algorithm 1: the VIA relay-selection policy (prediction-guided exploration).

One :class:`ViaPolicy` instance plays the role of the paper's controller
for a single optimised metric:

* every ``refresh_hours`` (T, default 24) it rebuilds the tomography model
  and predictor from the previous window's call history (stages 2-3),
* per call it prunes to the top-k candidates (Algorithm 2) and runs the
  modified UCB1 bandit over them (Algorithm 3), with an ε fraction of
  calls sent to uniformly random options for general exploration,
* optionally it applies the §4.6 budget gate before any relayed choice.

Configuration switches also express the paper's ablations and both
strawmen (see :mod:`repro.core.baselines`), so every compared strategy
shares this one code path and differs only where the paper says it does.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Hashable, Protocol

import numpy as np

from repro.core.bandit import UCB1Explorer
from repro.core.budget import BudgetGate, RelayLoadTracker
from repro.core.coordinates import CoordinateSystem
from repro.core.costs import COST_MODEL_NAMES, CostModel, make_cost_model
from repro.core.history import CallHistory, history_from_dict, history_to_dict
from repro.core.keys import Granularity, PairKeyer, PairView
from repro.core.predictor import Prediction, Predictor
from repro.core.tomography import InterRelayLookup, TomographyModel
from repro.core.topk import dynamic_top_k_cost, fixed_top_k_cost
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.tracing import trace
from repro.telephony.call import Call

__all__ = ["SelectionPolicy", "ViaConfig", "ViaPolicy", "make_policy"]


class SelectionPolicy(Protocol):
    """What the replay engine needs from any relay-selection strategy."""

    name: str

    def assign(self, call: Call, options: list[RelayOption]) -> RelayOption:
        """Pick a relaying option for ``call`` among ``options``."""
        ...

    def observe(self, call: Call, option: RelayOption, metrics: PathMetrics) -> None:
        """Learn from the realised performance of an assigned call."""
        ...


@dataclass(frozen=True, slots=True)
class ViaConfig:
    """Every knob of Algorithm 1 and its ablations.

    ``topk_mode``:
      * ``dynamic`` -- Algorithm 2 (confidence-interval top-k); the paper.
      * ``fixed``   -- best ``fixed_k`` predicted means (Figure 15 ablation).
      * ``argmin``  -- k = 1, no bandit: pure prediction (Strawman I).
      * ``all``     -- no pruning: explore everything (Strawman II).

    ``selector``:
      * ``ucb``    -- modified UCB1 (Algorithm 3).
      * ``greedy`` -- ε-greedy on empirical means (Strawman II's explorer).

    ``ucb_mode`` chooses the paper's top-k-upper-bound normalisation
    (``via``) or the classic range normalisation (``classic``, the other
    Figure 15 ablation).
    """

    metric: str = "rtt_ms"
    refresh_hours: float = 24.0
    epsilon: float = 0.03
    topk_mode: str = "dynamic"
    fixed_k: int = 2
    max_k: int | None = 6
    selector: str = "ucb"
    ucb_mode: str = "via"
    exploration_coef: float = 0.1
    greedy_epsilon: float = 0.1
    min_direct_samples: int = 3
    use_tomography: bool = True
    #: Extension: learn a Vivaldi embedding from direct-path RTTs and use
    #: it to predict the direct path of never-seen pairs.
    use_coordinates: bool = False
    budget: float = 1.0
    budget_aware: bool = True
    #: Per-relay load cap (§4.6's per-relay budget variant): no single
    #: relay may carry more than this share of recent calls.  None = off.
    per_relay_cap: float | None = None
    #: Sliding window (calls) over which per-relay load is measured.
    per_relay_window: int = 2000
    granularity: Granularity = "as"
    seed: int = 42

    def __post_init__(self) -> None:
        if self.metric not in COST_MODEL_NAMES:
            raise ValueError(
                f"unknown metric {self.metric!r}; expected one of {COST_MODEL_NAMES}"
            )
        if self.topk_mode not in ("dynamic", "fixed", "argmin", "all"):
            raise ValueError(f"unknown topk_mode: {self.topk_mode!r}")
        if self.selector not in ("ucb", "greedy"):
            raise ValueError(f"unknown selector: {self.selector!r}")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if not 0.0 <= self.greedy_epsilon <= 1.0:
            raise ValueError("greedy_epsilon must be in [0, 1]")
        if self.refresh_hours <= 0.0:
            raise ValueError("refresh_hours must be > 0")
        if not 0.0 <= self.budget <= 1.0:
            raise ValueError("budget must be in [0, 1]")
        if self.fixed_k < 1:
            raise ValueError("fixed_k must be >= 1")

    def with_metric(self, metric: str) -> "ViaConfig":
        """A copy optimising a different metric (runs are per-metric, §5)."""
        return replace(self, metric=metric)


@dataclass(slots=True)
class _PairState:
    """Per-(pair, period) cached pruning + bandit state."""

    options: list[RelayOption]
    topk: list[RelayOption]
    predictions: dict[RelayOption, Prediction]
    bandit: UCB1Explorer | None
    benefit: float | None = None
    argmin_choice: RelayOption | None = None
    greedy_counts: dict[RelayOption, int] = field(default_factory=dict)
    greedy_sums: dict[RelayOption, float] = field(default_factory=dict)


class ViaPolicy:
    """Stateful controller implementing Algorithm 1 for one metric."""

    def __init__(
        self,
        config: ViaConfig | None = None,
        *,
        inter_relay: InterRelayLookup | None = None,
        name: str | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ViaConfig()
        self.name = name or f"via[{self.config.metric}]"
        self._cost: CostModel = make_cost_model(self.config.metric)
        self._inter_relay = inter_relay
        self._keyer = PairKeyer(self.config.granularity)
        self._rng = np.random.default_rng(self.config.seed)
        self.history = CallHistory(window_hours=self.config.refresh_hours)
        self._period = -1
        self._predictor: Predictor | None = None
        self._pair_state: dict[Hashable, _PairState] = {}
        self._budget_gate: BudgetGate | None = None
        if self.config.budget < 1.0:
            self._budget_gate = BudgetGate(self.config.budget, aware=self.config.budget_aware)
        self._coordinates: CoordinateSystem | None = None
        if self.config.use_coordinates:
            self._coordinates = CoordinateSystem()
        self._load_tracker: RelayLoadTracker | None = None
        if self.config.per_relay_cap is not None:
            self._load_tracker = RelayLoadTracker(
                self.config.per_relay_cap, window=self.config.per_relay_window
            )
        # Relays currently marked down by the operator / fault plan: assign
        # skips options through them and repicks (graceful degradation, §7).
        self._down_relays: frozenset[int] = frozenset()
        # Diagnostics used by benches (§5.2 relay-mix, refresh counts).
        self.n_refreshes = 0
        self.n_epsilon_explorations = 0
        self.n_outage_repicks = 0
        # Observability: instruments are registered up front (so scrapes
        # show them at zero) but only fed while `repro.obs.runtime` is
        # enabled -- the disabled hot path pays one flag check.
        self.registry = registry if registry is not None else REGISTRY
        metric = self.config.metric
        self._obs_assign = self.registry.histogram(
            "via_assign_duration_seconds",
            "Wall time of ViaPolicy.assign, by optimised metric.",
            ("metric",),
        ).labels(metric=metric)
        self._obs_observe = self.registry.histogram(
            "via_observe_duration_seconds",
            "Wall time of ViaPolicy.observe, by optimised metric.",
            ("metric",),
        ).labels(metric=metric)
        self._obs_refreshes = self.registry.counter(
            "via_refreshes_total",
            "Predictor/tomography rebuilds (stages 2-3), by optimised metric.",
            ("metric",),
        ).labels(metric=metric)
        self._obs_epsilon = self.registry.counter(
            "via_epsilon_explorations_total",
            "Calls sent to epsilon general exploration, by optimised metric.",
            ("metric",),
        ).labels(metric=metric)
        self._obs_repicks = self.registry.counter(
            "via_outage_repicks_total",
            "Assignments re-picked around a down relay, by optimised metric.",
            ("metric",),
        ).labels(metric=metric)

    # ------------------------------------------------------------------
    # SelectionPolicy interface
    # ------------------------------------------------------------------

    def assign(self, call: Call, options: list[RelayOption]) -> RelayOption:
        if not obs_runtime.enabled:
            return self._assign(call, options)
        t0 = perf_counter()
        with trace("assign", metric=self.config.metric) as span:
            choice = self._assign(call, options)
            span.tag(option=choice.kind.value)
        self._obs_assign.observe(perf_counter() - t0)
        return choice

    def _assign(self, call: Call, options: list[RelayOption]) -> RelayOption:
        if not options:
            raise ValueError("assign() needs at least one option")
        period = int(call.t_hours // self.config.refresh_hours)
        if period != self._period:
            self._refresh(period)
        view = self._keyer.view(call)
        norm_options = [view.normalize(o) for o in options]
        state = self._state_for(view.pair_key, call.direct_blocked, norm_options)

        gate = self._budget_gate
        if gate is not None and not gate.allows(state.benefit):
            fallback = self._avoid_down(state, norm_options, self._fallback(norm_options))
            gate.record(state.benefit, relayed=fallback.is_relayed)
            return view.denormalize(fallback)

        choice = self._avoid_down(state, norm_options, self._choose(state, norm_options))
        tracker = self._load_tracker
        if tracker is not None:
            if choice.is_relayed and tracker.would_exceed(choice):
                choice = self._divert_overloaded(state, choice)
            tracker.record(choice)
        if gate is not None:
            gate.record(state.benefit, relayed=choice.is_relayed)
        return view.denormalize(choice)

    def observe(self, call: Call, option: RelayOption, metrics: PathMetrics) -> None:
        if not obs_runtime.enabled:
            return self._observe(call, option, metrics)
        t0 = perf_counter()
        with trace("observe", metric=self.config.metric):
            self._observe(call, option, metrics)
        self._obs_observe.observe(perf_counter() - t0)
        return None

    def _observe(self, call: Call, option: RelayOption, metrics: PathMetrics) -> None:
        view = self._keyer.view(call)
        norm = view.normalize(option)
        self.history.add(view.pair_key, norm, call.t_hours, metrics)
        if self._coordinates is not None and not option.is_relayed:
            side_s, side_d = view.pair_key
            if side_s != side_d:
                self._coordinates.observe(side_s, side_d, metrics.rtt_ms)
        state = self._pair_state.get((view.pair_key, call.direct_blocked))
        if state is None:
            return
        cost = self._cost.call_cost(metrics)
        if state.bandit is not None and norm in state.bandit.arms:
            state.bandit.update(norm, cost)
        if self.config.selector == "greedy":
            state.greedy_counts[norm] = state.greedy_counts.get(norm, 0) + 1
            state.greedy_sums[norm] = state.greedy_sums.get(norm, 0.0) + cost

    # ------------------------------------------------------------------
    # Relay outages (operator-marked, graceful degradation)
    # ------------------------------------------------------------------

    @property
    def down_relays(self) -> frozenset[int]:
        """Relay ids currently marked down (assign avoids them)."""
        return self._down_relays

    def set_down_relays(self, relay_ids) -> None:
        """Replace the set of relays assign must route around."""
        self._down_relays = frozenset(int(r) for r in relay_ids)

    def _option_down(self, option: RelayOption) -> bool:
        return any(rid in self._down_relays for rid in option.relay_ids())

    def _avoid_down(
        self, state: _PairState, norm_options: list[RelayOption], choice: RelayOption
    ) -> RelayOption:
        """Repick when the selected option rides a down relay.

        Walks the pair's top-k in predicted order first, then the full
        candidate list; if *every* option is down the original choice is
        returned (nothing better exists, and the realised blackhole metrics
        will teach the bandit the same lesson).
        """
        if not self._down_relays or not self._option_down(choice):
            return choice
        self.n_outage_repicks += 1
        if obs_runtime.enabled:
            self._obs_repicks.inc()
        for candidate in state.topk:
            if candidate != choice and not self._option_down(candidate):
                return candidate
        for candidate in norm_options:
            if candidate != choice and not self._option_down(candidate):
                return candidate
        return choice

    # ------------------------------------------------------------------
    # Stages 2-3: periodic refresh
    # ------------------------------------------------------------------

    def _refresh(self, period: int) -> None:
        with trace("refresh", metric=self.config.metric, period=period):
            self._do_refresh(period)
        if obs_runtime.enabled:
            self._obs_refreshes.inc()

    def _do_refresh(self, period: int) -> None:
        self._period = period
        self._pair_state = {}
        self.n_refreshes += 1
        window = period - 1
        if window < 0:
            self._predictor = None
            return
        tomography: TomographyModel | None = None
        if self.config.use_tomography and self._inter_relay is not None:
            tomography = TomographyModel.fit(
                (
                    ((key[0][0], key[0][1]), key[1], stat)
                    for key, stat in self.history.window_items(window)
                ),
                self._inter_relay,
            )
        self._predictor = Predictor(
            self.history,
            window,
            tomography=tomography,
            coordinates=self._coordinates,
            min_direct_samples=self.config.min_direct_samples,
        )
        # Only the window feeding the current predictor is ever read again.
        self.history.prune_before(window)

    def _state_for(
        self, pair_key: Hashable, direct_blocked: bool, norm_options: list[RelayOption]
    ) -> _PairState:
        # NAT-blocked calls see a direct-less option set, so they get their
        # own pruning/bandit state alongside the pair's regular one.
        state_key = (pair_key, direct_blocked)
        state = self._pair_state.get(state_key)
        if state is not None:
            return state
        predictions: dict[RelayOption, Prediction] = {}
        if self._predictor is not None:
            with trace("predict", n_options=len(norm_options)):
                predictions = self._predictor.predict_all(pair_key, norm_options)  # type: ignore[arg-type]
        with trace("prune", mode=self.config.topk_mode):
            topk = self._prune(predictions, norm_options)
        bandit: UCB1Explorer | None = None
        argmin_choice: RelayOption | None = None
        if self.config.topk_mode == "argmin":
            if predictions:
                argmin_choice = min(
                    predictions, key=lambda o: self._cost.predicted(predictions[o])
                )
        elif self.config.selector == "ucb":
            mode = self.config.ucb_mode if predictions else "classic"
            bandit = UCB1Explorer.from_cost_model(
                topk,
                predictions,
                self._cost,
                exploration_coef=self.config.exploration_coef,
                mode=mode,
            )
        state = _PairState(
            options=list(norm_options),
            topk=topk,
            predictions=predictions,
            bandit=bandit,
            benefit=self._benefit(predictions),
            argmin_choice=argmin_choice,
        )
        self._pair_state[state_key] = state
        return state

    def _prune(
        self,
        predictions: dict[RelayOption, Prediction],
        norm_options: list[RelayOption],
    ) -> list[RelayOption]:
        mode = self.config.topk_mode
        if mode == "all" or len(predictions) < 2:
            # Nothing (or not enough) to prune with: candidate set is all
            # options, ordered with direct first (cold-start exploration).
            return list(norm_options)
        if mode == "dynamic":
            return dynamic_top_k_cost(predictions, self._cost, max_k=self.config.max_k)
        if mode == "fixed":
            return fixed_top_k_cost(predictions, self._cost, self.config.fixed_k)
        # argmin: pruning is irrelevant, selection happens directly.
        return fixed_top_k_cost(predictions, self._cost, 1)

    @staticmethod
    def _fallback(norm_options: list[RelayOption]) -> RelayOption:
        """The do-nothing choice: the default path when it is on offer,
        else the first offered option (NAT-blocked calls have no direct)."""
        if DIRECT in norm_options:
            return DIRECT
        return norm_options[0]

    def _benefit(self, predictions: dict[RelayOption, Prediction]) -> float | None:
        """Predicted gain of the best relayed option over the direct path."""
        direct = predictions.get(DIRECT)
        if direct is None:
            return None
        relayed = [
            self._cost.predicted(p) for o, p in predictions.items() if o.is_relayed
        ]
        if not relayed:
            return None
        return self._cost.predicted(direct) - min(relayed)

    # ------------------------------------------------------------------
    # Stage 4: per-call selection
    # ------------------------------------------------------------------

    def _choose(self, state: _PairState, norm_options: list[RelayOption]) -> RelayOption:
        # Stage 4b: ε general exploration over ALL relaying options, which
        # keeps top-k honest under non-stationary performance (§4.5).
        if self.config.epsilon > 0.0 and self._rng.random() < self.config.epsilon:
            self.n_epsilon_explorations += 1
            if obs_runtime.enabled:
                self._obs_epsilon.inc()
            return norm_options[int(self._rng.integers(len(norm_options)))]
        if self.config.topk_mode == "argmin":
            if state.argmin_choice is not None:
                return state.argmin_choice
            return self._fallback(state.options)
        if self.config.selector == "greedy":
            return self._choose_greedy(state)
        assert state.bandit is not None
        if obs_runtime.enabled:
            with trace("bandit", k=len(state.topk)):
                return state.bandit.choose()
        return state.bandit.choose()

    def _divert_overloaded(self, state: _PairState, choice: RelayOption) -> RelayOption:
        """Per-relay cap exceeded: fall back to the best uncongested option.

        Walks the pair's top-k in predicted order and returns the first
        option whose relays are all under the cap; the direct path (never
        congested in this model) is the final fallback.
        """
        assert self._load_tracker is not None
        for candidate in state.topk:
            if candidate == choice:
                continue
            if not candidate.is_relayed or not self._load_tracker.would_exceed(candidate):
                return candidate
        return self._fallback(state.options)

    def _choose_greedy(self, state: _PairState) -> RelayOption:
        """ε-greedy over the candidate set on empirical means (Strawman II)."""
        candidates = state.topk
        if self._rng.random() < self.config.greedy_epsilon:
            return candidates[int(self._rng.integers(len(candidates)))]
        tried = [c for c in candidates if state.greedy_counts.get(c, 0) > 0]
        if not tried:
            return candidates[int(self._rng.integers(len(candidates)))]
        return min(
            tried, key=lambda c: state.greedy_sums[c] / state.greedy_counts[c]
        )

    # ------------------------------------------------------------------
    # Checkpointing (controller restarts, §7 operational concerns)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-compatible checkpoint of everything worth surviving a crash.

        v2 persists the windowed history *and* the current period's per-pair
        bandit/greedy state, so a restored controller resumes mid-period
        with the same top-k and the same exploration counts instead of
        relearning from scratch (§7 operational concerns).
        """
        from repro.core.history import _encode_key, option_to_dict

        pair_states = []
        for (pair_key, direct_blocked), state in self._pair_state.items():
            entry: dict = {
                "pair": [_encode_key(pair_key[0]), _encode_key(pair_key[1])],
                "direct_blocked": bool(direct_blocked),
                "options": [option_to_dict(o) for o in state.options],
            }
            if state.bandit is not None:
                per_arm = state.bandit.export_state()
                entry["bandit"] = {
                    "arms": [option_to_dict(a) for a in state.bandit.arms],
                    "counts": [per_arm[a][0] for a in state.bandit.arms],
                    "cost_sums": [per_arm[a][1] for a in state.bandit.arms],
                    "max_seen_cost": state.bandit.max_seen_cost,
                }
            if state.greedy_counts:
                greedy_opts = list(state.greedy_counts)
                entry["greedy"] = {
                    "options": [option_to_dict(o) for o in greedy_opts],
                    "counts": [state.greedy_counts[o] for o in greedy_opts],
                    "sums": [state.greedy_sums.get(o, 0.0) for o in greedy_opts],
                }
            pair_states.append(entry)
        return {
            "format": "via-policy-state-v2",
            "metric": self.config.metric,
            "period": self._period,
            "n_refreshes": self.n_refreshes,
            # The RNG position matters for exact crash recovery: epsilon
            # exploration draws from it per assignment, so a restored
            # policy with a fresh RNG would diverge from its uninterrupted
            # twin on the very next call.  (Optional key: v2 checkpoints
            # without it still load, with a reseeded RNG.)
            "rng": self._rng.bit_generator.state,
            "n_epsilon_explorations": self.n_epsilon_explorations,
            "history": history_to_dict(self.history),
            "pair_states": pair_states,
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore a checkpoint produced by :meth:`state_dict`.

        Accepts both the v1 (history-only) and v2 (history + bandit)
        formats.  For v2, predictor/tomography and per-pair pruning are
        rebuilt deterministically from the restored history, then the
        saved exploration counts are overlaid onto the fresh bandits.
        """
        from repro.core.history import _decode_key, option_from_dict

        fmt = payload.get("format")
        if fmt not in ("via-policy-state-v1", "via-policy-state-v2"):
            raise ValueError(f"unrecognised checkpoint format: {fmt!r}")
        if payload.get("metric") != self.config.metric:
            raise ValueError(
                f"checkpoint optimises {payload.get('metric')!r}, "
                f"policy optimises {self.config.metric!r}"
            )
        self.history = history_from_dict(payload["history"])
        self._period = -1  # force a refresh on the next call
        self._pair_state = {}
        self._predictor = None
        rng_state = payload.get("rng")
        if rng_state is not None:
            self._rng.bit_generator.state = rng_state
        if "n_epsilon_explorations" in payload:
            self.n_epsilon_explorations = int(payload["n_epsilon_explorations"])
        if fmt == "via-policy-state-v1":
            return
        period = int(payload.get("period", -1))
        if period < 0:
            return
        saved_refreshes = payload.get("n_refreshes")
        self._refresh(period)
        for entry in payload.get("pair_states", ()):
            pair_key = (_decode_key(entry["pair"][0]), _decode_key(entry["pair"][1]))
            options = [option_from_dict(o) for o in entry["options"]]
            state = self._state_for(pair_key, bool(entry["direct_blocked"]), options)
            bandit_data = entry.get("bandit")
            if bandit_data is not None and state.bandit is not None:
                arms = [option_from_dict(o) for o in bandit_data["arms"]]
                state.bandit.restore_state(
                    {
                        arm: (int(count), float(cost_sum))
                        for arm, count, cost_sum in zip(
                            arms, bandit_data["counts"], bandit_data["cost_sums"]
                        )
                    },
                    max_seen_cost=float(bandit_data.get("max_seen_cost", 0.0)),
                )
            greedy = entry.get("greedy")
            if greedy:
                for opt_data, count, total in zip(
                    greedy["options"], greedy["counts"], greedy["sums"]
                ):
                    option = option_from_dict(opt_data)
                    state.greedy_counts[option] = int(count)
                    state.greedy_sums[option] = float(total)
        if saved_refreshes is not None:
            self.n_refreshes = int(saved_refreshes)

    def save_state(self, path) -> None:
        """Checkpoint learned state to ``path`` (JSON); see :meth:`state_dict`."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.state_dict()), encoding="utf-8")

    def load_state(self, path) -> None:
        """Restore a checkpoint written by :meth:`save_state`."""
        import json
        from pathlib import Path

        self.load_state_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def period(self) -> int:
        """The current refresh period index (-1 before the first call)."""
        return self._period

    def coverage_holes(self):
        """(pair_key, option) combinations with no prediction this period.

        These are the "holes" §7 of the paper proposes filling with active
        measurements: options the predictor could reach neither through
        direct history nor through tomography.  Yields pairs in the order
        they were first seen this period.
        """
        for (pair_key, _direct_blocked), state in self._pair_state.items():
            for option in state.options:
                if option not in state.predictions:
                    yield pair_key, option

    @property
    def relayed_fraction(self) -> float | None:
        """Fraction of calls relayed so far (only tracked under a budget)."""
        if self._budget_gate is None:
            return None
        return self._budget_gate.relayed_fraction


def make_policy(
    config: ViaConfig,
    *,
    inter_relay: InterRelayLookup | None = None,
    name: str | None = None,
    registry: MetricsRegistry | None = None,
) -> ViaPolicy:
    """Convenience constructor mirroring :class:`ViaPolicy`."""
    return ViaPolicy(config, inter_relay=inter_relay, name=name, registry=registry)
