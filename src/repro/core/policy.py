"""Algorithm 1: the VIA relay-selection policy (prediction-guided exploration).

One :class:`ViaPolicy` instance plays the role of the paper's controller
for a single optimised metric:

* every ``refresh_hours`` (T, default 24) it rebuilds the tomography model
  and predictor from the previous window's call history (stages 2-3),
* per call it prunes to the top-k candidates (Algorithm 2) and runs the
  modified UCB1 bandit over them (Algorithm 3), with an ε fraction of
  calls sent to uniformly random options for general exploration,
* optionally it applies the §4.6 budget gate before any relayed choice.

Configuration switches also express the paper's ablations and both
strawmen (see :mod:`repro.core.baselines`), so every compared strategy
shares this one code path and differs only where the paper says it does.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Hashable, Protocol

import numpy as np

from repro.core.bandit import UCB1Explorer
from repro.core.budget import BudgetGate, RelayLoadTracker
from repro.core.coordinates import CoordinateSystem
from repro.core.costs import COST_MODEL_NAMES, CostModel, make_cost_model
from repro.core.history import CallHistory, history_from_dict, history_to_dict
from repro.core.keys import Granularity, PairKeyer, PairView
from repro.core.predictor import Prediction, Predictor
from repro.core.tomography import InterRelayLookup, TomographyModel
from repro.core.topk import dynamic_top_k_cost, fixed_top_k_cost
from repro.core.vector import (
    CallBatch,
    MetricsBatch,
    as_call_batch,
    as_metrics_batch,
    epsilon_explorations,
)
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.tracing import trace
from repro.telephony.call import Call

__all__ = [
    "SelectionPolicy",
    "ViaConfig",
    "ViaPolicy",
    "VectorizedViaPolicy",
    "make_policy",
]


class SelectionPolicy(Protocol):
    """What the replay engine needs from any relay-selection strategy."""

    name: str

    def assign(self, call: Call, options: list[RelayOption]) -> RelayOption:
        """Pick a relaying option for ``call`` among ``options``."""
        ...

    def observe(self, call: Call, option: RelayOption, metrics: PathMetrics) -> None:
        """Learn from the realised performance of an assigned call."""
        ...


@dataclass(frozen=True, slots=True)
class ViaConfig:
    """Every knob of Algorithm 1 and its ablations.

    ``topk_mode``:
      * ``dynamic`` -- Algorithm 2 (confidence-interval top-k); the paper.
      * ``fixed``   -- best ``fixed_k`` predicted means (Figure 15 ablation).
      * ``argmin``  -- k = 1, no bandit: pure prediction (Strawman I).
      * ``all``     -- no pruning: explore everything (Strawman II).

    ``selector``:
      * ``ucb``    -- modified UCB1 (Algorithm 3).
      * ``greedy`` -- ε-greedy on empirical means (Strawman II's explorer).

    ``ucb_mode`` chooses the paper's top-k-upper-bound normalisation
    (``via``) or the classic range normalisation (``classic``, the other
    Figure 15 ablation).
    """

    metric: str = "rtt_ms"
    refresh_hours: float = 24.0
    epsilon: float = 0.03
    topk_mode: str = "dynamic"
    fixed_k: int = 2
    max_k: int | None = 6
    selector: str = "ucb"
    ucb_mode: str = "via"
    exploration_coef: float = 0.1
    greedy_epsilon: float = 0.1
    min_direct_samples: int = 3
    use_tomography: bool = True
    #: Extension: learn a Vivaldi embedding from direct-path RTTs and use
    #: it to predict the direct path of never-seen pairs.
    use_coordinates: bool = False
    budget: float = 1.0
    budget_aware: bool = True
    #: Per-relay load cap (§4.6's per-relay budget variant): no single
    #: relay may carry more than this share of recent calls.  None = off.
    per_relay_cap: float | None = None
    #: Sliding window (calls) over which per-relay load is measured.
    per_relay_window: int = 2000
    granularity: Granularity = "as"
    seed: int = 42

    def __post_init__(self) -> None:
        if self.metric not in COST_MODEL_NAMES:
            raise ValueError(
                f"unknown metric {self.metric!r}; expected one of {COST_MODEL_NAMES}"
            )
        if self.topk_mode not in ("dynamic", "fixed", "argmin", "all"):
            raise ValueError(f"unknown topk_mode: {self.topk_mode!r}")
        if self.selector not in ("ucb", "greedy"):
            raise ValueError(f"unknown selector: {self.selector!r}")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        if not 0.0 <= self.greedy_epsilon <= 1.0:
            raise ValueError("greedy_epsilon must be in [0, 1]")
        if self.refresh_hours <= 0.0:
            raise ValueError("refresh_hours must be > 0")
        if not 0.0 <= self.budget <= 1.0:
            raise ValueError("budget must be in [0, 1]")
        if self.fixed_k < 1:
            raise ValueError("fixed_k must be >= 1")

    def with_metric(self, metric: str) -> "ViaConfig":
        """A copy optimising a different metric (runs are per-metric, §5)."""
        return replace(self, metric=metric)


@dataclass(slots=True)
class _PairState:
    """Per-(pair, period) cached pruning + bandit state."""

    options: list[RelayOption]
    topk: list[RelayOption]
    predictions: dict[RelayOption, Prediction]
    bandit: UCB1Explorer | None
    benefit: float | None = None
    argmin_choice: RelayOption | None = None
    greedy_counts: dict[RelayOption, int] = field(default_factory=dict)
    greedy_sums: dict[RelayOption, float] = field(default_factory=dict)


class ViaPolicy:
    """Stateful controller implementing Algorithm 1 for one metric."""

    def __init__(
        self,
        config: ViaConfig | None = None,
        *,
        inter_relay: InterRelayLookup | None = None,
        name: str | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ViaConfig()
        self.name = name or f"via[{self.config.metric}]"
        self._cost: CostModel = make_cost_model(self.config.metric)
        self._inter_relay = inter_relay
        self._keyer = PairKeyer(self.config.granularity)
        self._rng = np.random.default_rng(self.config.seed)
        self.history = CallHistory(window_hours=self.config.refresh_hours)
        self._period = -1
        self._predictor: Predictor | None = None
        self._pair_state: dict[Hashable, _PairState] = {}
        self._budget_gate: BudgetGate | None = None
        if self.config.budget < 1.0:
            self._budget_gate = BudgetGate(self.config.budget, aware=self.config.budget_aware)
        self._coordinates: CoordinateSystem | None = None
        if self.config.use_coordinates:
            self._coordinates = CoordinateSystem()
        self._load_tracker: RelayLoadTracker | None = None
        if self.config.per_relay_cap is not None:
            self._load_tracker = RelayLoadTracker(
                self.config.per_relay_cap, window=self.config.per_relay_window
            )
        # Relays currently marked down by the operator / fault plan: assign
        # skips options through them and repicks (graceful degradation, §7).
        self._down_relays: frozenset[int] = frozenset()
        # Diagnostics used by benches (§5.2 relay-mix, refresh counts).
        self.n_refreshes = 0
        self.n_epsilon_explorations = 0
        self.n_outage_repicks = 0
        # Observability: instruments are registered up front (so scrapes
        # show them at zero) but only fed while `repro.obs.runtime` is
        # enabled -- the disabled hot path pays one flag check.
        self.registry = registry if registry is not None else REGISTRY
        metric = self.config.metric
        self._obs_assign = self.registry.histogram(
            "via_assign_duration_seconds",
            "Wall time of ViaPolicy.assign, by optimised metric.",
            ("metric",),
        ).labels(metric=metric)
        self._obs_observe = self.registry.histogram(
            "via_observe_duration_seconds",
            "Wall time of ViaPolicy.observe, by optimised metric.",
            ("metric",),
        ).labels(metric=metric)
        self._obs_refreshes = self.registry.counter(
            "via_refreshes_total",
            "Predictor/tomography rebuilds (stages 2-3), by optimised metric.",
            ("metric",),
        ).labels(metric=metric)
        self._obs_epsilon = self.registry.counter(
            "via_epsilon_explorations_total",
            "Calls sent to epsilon general exploration, by optimised metric.",
            ("metric",),
        ).labels(metric=metric)
        self._obs_repicks = self.registry.counter(
            "via_outage_repicks_total",
            "Assignments re-picked around a down relay, by optimised metric.",
            ("metric",),
        ).labels(metric=metric)
        self._obs_assign_batch = self.registry.histogram(
            "via_assign_batch_duration_seconds",
            "Wall time of ViaPolicy.assign_many, by optimised metric.",
            ("metric",),
        ).labels(metric=metric)
        self._obs_observe_batch = self.registry.histogram(
            "via_observe_batch_duration_seconds",
            "Wall time of ViaPolicy.observe_many, by optimised metric.",
            ("metric",),
        ).labels(metric=metric)
        batch_calls = self.registry.counter(
            "via_batch_calls_total",
            "Calls served through the batch (vector) interface, by operation.",
            ("metric", "op"),
        )
        self._obs_batch_assigns = batch_calls.labels(metric=metric, op="assign")
        self._obs_batch_observes = batch_calls.labels(metric=metric, op="observe")

    # ------------------------------------------------------------------
    # SelectionPolicy interface
    # ------------------------------------------------------------------

    def assign(self, call: Call, options: list[RelayOption]) -> RelayOption:
        if not obs_runtime.enabled:
            return self._assign(call, options)
        t0 = perf_counter()
        with trace("assign", metric=self.config.metric) as span:
            choice = self._assign(call, options)
            span.tag(option=choice.kind.value)
        self._obs_assign.observe(perf_counter() - t0)
        return choice

    def _assign(self, call: Call, options: list[RelayOption]) -> RelayOption:
        if not options:
            raise ValueError("assign() needs at least one option")
        period = int(call.t_hours // self.config.refresh_hours)
        if period != self._period:
            self._refresh(period)
        view = self._keyer.view(call)
        norm_options = [view.normalize(o) for o in options]
        state = self._state_for(view.pair_key, call.direct_blocked, norm_options)

        gate = self._budget_gate
        if gate is not None and not gate.allows(state.benefit):
            fallback = self._avoid_down(state, norm_options, self._fallback(norm_options))
            gate.record(state.benefit, relayed=fallback.is_relayed)
            return view.denormalize(fallback)

        choice = self._avoid_down(state, norm_options, self._choose(state, norm_options))
        tracker = self._load_tracker
        if tracker is not None:
            if choice.is_relayed and tracker.would_exceed(choice):
                choice = self._divert_overloaded(state, choice)
            tracker.record(choice)
        if gate is not None:
            gate.record(state.benefit, relayed=choice.is_relayed)
        return view.denormalize(choice)

    def observe(self, call: Call, option: RelayOption, metrics: PathMetrics) -> None:
        if not obs_runtime.enabled:
            return self._observe(call, option, metrics)
        t0 = perf_counter()
        with trace("observe", metric=self.config.metric):
            self._observe(call, option, metrics)
        self._obs_observe.observe(perf_counter() - t0)
        return None

    def _observe(self, call: Call, option: RelayOption, metrics: PathMetrics) -> None:
        view = self._keyer.view(call)
        norm = view.normalize(option)
        self.history.add(view.pair_key, norm, call.t_hours, metrics)
        if self._coordinates is not None and not option.is_relayed:
            side_s, side_d = view.pair_key
            if side_s != side_d:
                self._coordinates.observe(side_s, side_d, metrics.rtt_ms)
        state = self._pair_state.get((view.pair_key, call.direct_blocked))
        if state is None:
            return
        cost = self._cost.call_cost(metrics)
        if state.bandit is not None and norm in state.bandit.arms:
            state.bandit.update(norm, cost)
        if self.config.selector == "greedy":
            state.greedy_counts[norm] = state.greedy_counts.get(norm, 0) + 1
            state.greedy_sums[norm] = state.greedy_sums.get(norm, 0.0) + cost

    # ------------------------------------------------------------------
    # Batch (vector) interface
    # ------------------------------------------------------------------

    def assign_many(self, calls, options_per_call) -> list[RelayOption]:
        """Assign a batch of calls, bit-identical to sequential ``assign``.

        ``calls`` is a sequence of :class:`Call`\\ s or a prebuilt
        :class:`~repro.core.vector.CallBatch`; ``options_per_call[i]`` is
        call ``i``'s candidate list.  The contract (proven by
        ``run_differential`` and ``tests/test_vector.py``): the returned
        choices, the RNG position, and every piece of learned state equal
        what ``[self.assign(c, o) for ...]`` -- with **no interleaved
        observes** -- would have produced.  Configurations outside the
        vector fast path (greedy selector, budget gate, per-relay caps,
        live outages, non-AS granularity) transparently take the scalar
        loop.
        """
        if not obs_runtime.enabled:
            return self._assign_many(calls, options_per_call)
        t0 = perf_counter()
        with trace("assign_many", metric=self.config.metric, n=len(options_per_call)):
            choices = self._assign_many(calls, options_per_call)
        self._obs_assign_batch.observe(perf_counter() - t0)
        self._obs_batch_assigns.inc(len(choices))
        return choices

    def observe_many(self, calls, options, metrics_list) -> None:
        """Learn from a batch of outcomes, bit-identical to sequential
        ``observe`` over the same rows.

        ``metrics_list`` is a sequence of :class:`PathMetrics` or a
        prebuilt :class:`~repro.core.vector.MetricsBatch`.  Observes carry
        no RNG, so ordering only matters within one (pair, option) cell --
        which the grouped fold preserves exactly.  Configurations the
        vector path does not cover (greedy selector, coordinates, non-AS
        granularity) take the scalar loop.
        """
        if not obs_runtime.enabled:
            return self._observe_many(calls, options, metrics_list)
        t0 = perf_counter()
        with trace("observe_many", metric=self.config.metric, n=len(options)):
            self._observe_many(calls, options, metrics_list)
        self._obs_observe_batch.observe(perf_counter() - t0)
        self._obs_batch_observes.inc(len(options))
        return None

    def _vector_assign_eligible(self) -> bool:
        """Can assigns take the columnar fast path under this config?

        The vector path covers the paper-core configuration space at
        ``as`` granularity.  The operational extensions (budget gate,
        per-relay caps, live relay outages) and the greedy strawman
        selector have inherently per-call sequential semantics, so batches
        under them loop the scalar ``_assign`` -- same results, no
        speedup.
        """
        return (
            self.config.granularity == "as"
            and self.config.selector != "greedy"
            and self._budget_gate is None
            and self._load_tracker is None
            and not self._down_relays
        )

    def _vector_observe_eligible(self) -> bool:
        return (
            self.config.granularity == "as"
            and self.config.selector != "greedy"
            and self._coordinates is None
        )

    def _assign_many(self, calls, options_per_call) -> list[RelayOption]:
        batch = as_call_batch(calls)
        if len(batch.calls) != len(options_per_call):
            raise ValueError(
                f"assign_many got {len(batch.calls)} calls but "
                f"{len(options_per_call)} option lists"
            )
        if not batch.calls:
            return []
        if not self._vector_assign_eligible():
            scalar = self._assign
            return [scalar(c, o) for c, o in zip(batch.calls, options_per_call)]
        if not all(options_per_call):
            raise ValueError("assign() needs at least one option")
        return self._assign_vector(batch, options_per_call)

    def _assign_vector(
        self, batch: CallBatch, options_per_call
    ) -> list[RelayOption]:
        n = len(batch.calls)
        periods = np.floor_divide(batch.t_hours, self.config.refresh_hours).astype(
            np.int64
        )
        out: list[RelayOption] = [DIRECT] * n
        lens = list(map(len, options_per_call))
        # Split at refresh boundaries: each run of a constant period is one
        # vector segment, refreshed exactly when the scalar loop would.
        change = np.nonzero(np.diff(periods))[0] + 1
        bounds = [0, *change.tolist(), n]
        for s in range(len(bounds) - 1):
            i0, i1 = bounds[s], bounds[s + 1]
            period = int(periods[i0])
            if period != self._period:
                self._refresh(period)
            self._assign_segment(batch, options_per_call, lens, i0, i1, out)
        return out

    def _assign_segment(
        self, batch: CallBatch, options_per_call, lens: list, i0: int, i1: int, out: list
    ) -> None:
        """Vector-assign one constant-period slice ``[i0, i1)`` into ``out``."""
        src = batch.src_asn[i0:i1]
        dst = batch.dst_asn[i0:i1]
        blocked = batch.direct_blocked[i0:i1]
        m = i1 - i0
        # Dense-rank the endpoints so composite pair codes cannot overflow
        # regardless of raw ASN magnitudes; ranks preserve order, so the
        # canonical (lo, hi) orientation matches PairKeyer exactly.
        uv, ranks = np.unique(np.concatenate((src, dst)), return_inverse=True)
        sr, dr = ranks[:m], ranks[m:]
        lo = np.minimum(sr, dr)
        hi = np.maximum(sr, dr)
        flipped = sr > dr
        codes = (lo.astype(np.int64) * len(uv) + hi) * 2 + blocked
        groups, first, inv = np.unique(codes, return_index=True, return_inverse=True)
        forward = np.empty(len(groups), dtype=object)
        reverse = np.empty(len(groups), dtype=object)
        # Within an assign batch only observes could mutate bandit state
        # and there are none, so each (pair, blocked) group's exploit
        # choice is a constant: compute it once per group.  Groups are
        # visited in first-seen order so state creation matches the scalar
        # loop's dict insertion order (checkpoints and coverage_holes
        # expose that order).
        for g in np.argsort(first, kind="stable").tolist():
            j = int(first[g])
            pair_key = (int(uv[lo[j]]), int(uv[hi[j]]))
            direct_blocked = bool(blocked[j])
            state = self._pair_state.get((pair_key, direct_blocked))
            if state is None:
                options = options_per_call[i0 + j]
                if flipped[j]:
                    norm_options = [o.reversed() for o in options]
                else:
                    norm_options = list(options)
                state = self._state_for(pair_key, direct_blocked, norm_options)
            choice = self._choose_exploit(state)
            forward[g] = choice
            reverse[g] = choice.reversed()
        segment = np.where(flipped, reverse[inv], forward[inv]).tolist()
        if self.config.epsilon > 0.0:
            # ε general exploration, drawn in blocks with scalar-identical
            # bitstream consumption (see vector.epsilon_explorations).
            # Exploring calls return their own option verbatim:
            # denormalize(normalize(o)) is the identity.
            hits = epsilon_explorations(self._rng, self.config.epsilon, lens[i0:i1])
            if hits:
                self.n_epsilon_explorations += len(hits)
                if obs_runtime.enabled:
                    self._obs_epsilon.inc(len(hits))
                for offset, pick in hits:
                    segment[offset] = options_per_call[i0 + offset][pick]
        out[i0:i1] = segment

    def _choose_exploit(self, state: _PairState) -> RelayOption:
        """The deterministic (non-ε) part of :meth:`_choose`."""
        if self.config.topk_mode == "argmin":
            if state.argmin_choice is not None:
                return state.argmin_choice
            return self._fallback(state.options)
        assert state.bandit is not None
        return state.bandit.choose()

    def _observe_many(self, calls, options, metrics_list) -> None:
        batch = as_call_batch(calls)
        metrics = as_metrics_batch(metrics_list)
        options = list(options)
        if not (len(batch.calls) == len(options) == len(metrics)):
            raise ValueError(
                f"observe_many got {len(batch.calls)} calls, {len(options)} "
                f"options and {len(metrics)} metric rows"
            )
        if not options:
            return
        if not self._vector_observe_eligible():
            scalar = self._observe
            for call, option, row in zip(batch.calls, options, metrics.iter_rows()):
                scalar(call, option, row)
            return
        self._observe_vector(batch, options, metrics)

    def _observe_vector(
        self, batch: CallBatch, options: list[RelayOption], metrics: MetricsBatch
    ) -> None:
        n = len(options)
        src = batch.src_asn
        dst = batch.dst_asn
        uv, ranks = np.unique(np.concatenate((src, dst)), return_inverse=True)
        sr, dr = ranks[:n], ranks[n:]
        lo = np.minimum(sr, dr)
        hi = np.maximum(sr, dr)
        flipped = sr > dr
        # Normalise by unique (option object, flip) combination rather than
        # per row: batches coming out of assign_many observe a handful of
        # shared option objects over and over, so the reversed() calls and
        # option hashing collapse to one per distinct combination.  The
        # per-value ``opt_index`` then merges object-distinct but
        # value-equal options into one id, so the grouped folds see
        # exactly the key equality the scalar dicts do.
        obj_ids = np.fromiter(map(id, options), dtype=np.int64, count=n)
        idcodes = obj_ids * 2 + flipped
        _, u_first, u_inv = np.unique(idcodes, return_index=True, return_inverse=True)
        opt_index: dict[RelayOption, int] = {}
        canonical: list[RelayOption] = []
        u_norm = np.empty(len(u_first), dtype=object)
        u_oid = np.empty(len(u_first), dtype=np.int64)
        for u, j in enumerate(u_first.tolist()):
            option = options[j]
            normalized = option.reversed() if flipped[j] else option
            oid = opt_index.get(normalized)
            if oid is None:
                oid = len(opt_index)
                opt_index[normalized] = oid
                canonical.append(normalized)
            u_norm[u] = canonical[oid]
            u_oid[u] = oid
        norm = u_norm[u_inv]
        opt_ids = u_oid[u_inv]
        pair_codes = lo.astype(np.int64) * len(uv) + hi
        windows = np.floor_divide(batch.t_hours, self.history.window_hours).astype(
            np.int64
        )
        wmin = int(windows.min())
        wspan = int(windows.max()) - wmin + 1
        n_opts = len(opt_index)
        values = metrics.values
        # --- History fold: group rows by (pair, window, option). -------
        hcodes = (pair_codes * wspan + (windows - wmin)) * n_opts + opt_ids
        hgroups, hfirst, hinv = np.unique(
            hcodes, return_index=True, return_inverse=True
        )
        by_row = np.argsort(hinv, kind="stable")
        starts = np.searchsorted(hinv[by_row], np.arange(len(hgroups)))
        ends = np.append(starts[1:], n)
        history = self.history
        pair_keys: dict[int, tuple] = {}
        # First-seen group order keeps window-bucket dict insertion order
        # identical to the scalar loop; downstream iteration (tomography
        # fits, population priors, serialisation) observes that order, so
        # it is part of the bit-equivalence contract.
        for g in np.argsort(hfirst, kind="stable").tolist():
            j = int(hfirst[g])
            code = int(pair_codes[j])
            pair_key = pair_keys.get(code)
            if pair_key is None:
                pair_key = (int(uv[lo[j]]), int(uv[hi[j]]))
                pair_keys[code] = pair_key
            rows = by_row[starts[g] : ends[g]]
            history.add_group(pair_key, norm[j], int(windows[j]), values[rows])
        # --- Bandit fold: group rows by (pair, blocked, option). -------
        # Per-arm cost sums fold in batch order; cross-arm interleaving
        # commutes (sums and maxima), so grouping preserves equality.
        blocked = batch.direct_blocked
        scodes = (pair_codes * 2 + blocked) * n_opts + opt_ids
        sgroups, sfirst, sinv = np.unique(
            scodes, return_index=True, return_inverse=True
        )
        s_by_row = np.argsort(sinv, kind="stable")
        s_starts = np.searchsorted(sinv[s_by_row], np.arange(len(sgroups)))
        s_ends = np.append(s_starts[1:], n)
        costs: np.ndarray | None = None
        states: dict[tuple[int, bool], _PairState | None] = {}
        for g in np.argsort(sfirst, kind="stable").tolist():
            j = int(sfirst[g])
            code = int(pair_codes[j])
            direct_blocked = bool(blocked[j])
            state_cache_key = (code, direct_blocked)
            if state_cache_key in states:
                state = states[state_cache_key]
            else:
                state = self._pair_state.get((pair_keys[code], direct_blocked))
                states[state_cache_key] = state
            if state is None or state.bandit is None:
                continue
            arm = norm[j]
            if not state.bandit.has_arm(arm):
                continue
            if costs is None:
                costs = self._cost.call_cost_many(values)
            rows = s_by_row[s_starts[g] : s_ends[g]]
            state.bandit.update_many(arm, costs[rows].tolist())

    # ------------------------------------------------------------------
    # Relay outages (operator-marked, graceful degradation)
    # ------------------------------------------------------------------

    @property
    def down_relays(self) -> frozenset[int]:
        """Relay ids currently marked down (assign avoids them)."""
        return self._down_relays

    def set_down_relays(self, relay_ids) -> None:
        """Replace the set of relays assign must route around."""
        self._down_relays = frozenset(int(r) for r in relay_ids)

    def _option_down(self, option: RelayOption) -> bool:
        return any(rid in self._down_relays for rid in option.relay_ids())

    def _avoid_down(
        self, state: _PairState, norm_options: list[RelayOption], choice: RelayOption
    ) -> RelayOption:
        """Repick when the selected option rides a down relay.

        Walks the pair's top-k in predicted order first, then the full
        candidate list; if *every* option is down the original choice is
        returned (nothing better exists, and the realised blackhole metrics
        will teach the bandit the same lesson).
        """
        if not self._down_relays or not self._option_down(choice):
            return choice
        self.n_outage_repicks += 1
        if obs_runtime.enabled:
            self._obs_repicks.inc()
        for candidate in state.topk:
            if candidate != choice and not self._option_down(candidate):
                return candidate
        for candidate in norm_options:
            if candidate != choice and not self._option_down(candidate):
                return candidate
        return choice

    # ------------------------------------------------------------------
    # Stages 2-3: periodic refresh
    # ------------------------------------------------------------------

    def refresh(self, t_hours: float) -> bool:
        """Roll the window over to the period covering ``t_hours``.

        The per-call paths do this lazily; controller loops (and fleet
        wrappers like :class:`~repro.core.sharding.ShardedPolicy`) call
        it explicitly so idle policies still retire stale predictors.
        Returns True when a refresh actually ran (the period changed).
        """
        period = int(t_hours // self.config.refresh_hours)
        if period == self._period:
            return False
        self._refresh(period)
        return True

    def _refresh(self, period: int) -> None:
        with trace("refresh", metric=self.config.metric, period=period):
            self._do_refresh(period)
        if obs_runtime.enabled:
            self._obs_refreshes.inc()

    def _do_refresh(self, period: int) -> None:
        self._period = period
        self._pair_state = {}
        self.n_refreshes += 1
        window = period - 1
        if window < 0:
            self._predictor = None
            return
        tomography: TomographyModel | None = None
        if self.config.use_tomography and self._inter_relay is not None:
            tomography = TomographyModel.fit(
                (
                    ((key[0][0], key[0][1]), key[1], stat)
                    for key, stat in self.history.window_items(window)
                ),
                self._inter_relay,
            )
        self._predictor = Predictor(
            self.history,
            window,
            tomography=tomography,
            coordinates=self._coordinates,
            min_direct_samples=self.config.min_direct_samples,
        )
        # Only the window feeding the current predictor is ever read again.
        self.history.prune_before(window)

    def _state_for(
        self, pair_key: Hashable, direct_blocked: bool, norm_options: list[RelayOption]
    ) -> _PairState:
        # NAT-blocked calls see a direct-less option set, so they get their
        # own pruning/bandit state alongside the pair's regular one.
        state_key = (pair_key, direct_blocked)
        state = self._pair_state.get(state_key)
        if state is not None:
            return state
        predictions: dict[RelayOption, Prediction] = {}
        if self._predictor is not None:
            with trace("predict", n_options=len(norm_options)):
                predictions = self._predictor.predict_all(pair_key, norm_options)  # type: ignore[arg-type]
        with trace("prune", mode=self.config.topk_mode):
            topk = self._prune(predictions, norm_options)
        bandit: UCB1Explorer | None = None
        argmin_choice: RelayOption | None = None
        if self.config.topk_mode == "argmin":
            if predictions:
                argmin_choice = min(
                    predictions, key=lambda o: self._cost.predicted(predictions[o])
                )
        elif self.config.selector == "ucb":
            mode = self.config.ucb_mode if predictions else "classic"
            bandit = UCB1Explorer.from_cost_model(
                topk,
                predictions,
                self._cost,
                exploration_coef=self.config.exploration_coef,
                mode=mode,
            )
        state = _PairState(
            options=list(norm_options),
            topk=topk,
            predictions=predictions,
            bandit=bandit,
            benefit=self._benefit(predictions),
            argmin_choice=argmin_choice,
        )
        self._pair_state[state_key] = state
        return state

    def _prune(
        self,
        predictions: dict[RelayOption, Prediction],
        norm_options: list[RelayOption],
    ) -> list[RelayOption]:
        mode = self.config.topk_mode
        if mode == "all" or len(predictions) < 2:
            # Nothing (or not enough) to prune with: candidate set is all
            # options, ordered with direct first (cold-start exploration).
            return list(norm_options)
        if mode == "dynamic":
            return dynamic_top_k_cost(predictions, self._cost, max_k=self.config.max_k)
        if mode == "fixed":
            return fixed_top_k_cost(predictions, self._cost, self.config.fixed_k)
        # argmin: pruning is irrelevant, selection happens directly.
        return fixed_top_k_cost(predictions, self._cost, 1)

    @staticmethod
    def _fallback(norm_options: list[RelayOption]) -> RelayOption:
        """The do-nothing choice: the default path when it is on offer,
        else the first offered option (NAT-blocked calls have no direct)."""
        if DIRECT in norm_options:
            return DIRECT
        return norm_options[0]

    def _benefit(self, predictions: dict[RelayOption, Prediction]) -> float | None:
        """Predicted gain of the best relayed option over the direct path."""
        direct = predictions.get(DIRECT)
        if direct is None:
            return None
        relayed = [
            self._cost.predicted(p) for o, p in predictions.items() if o.is_relayed
        ]
        if not relayed:
            return None
        return self._cost.predicted(direct) - min(relayed)

    # ------------------------------------------------------------------
    # Stage 4: per-call selection
    # ------------------------------------------------------------------

    def _choose(self, state: _PairState, norm_options: list[RelayOption]) -> RelayOption:
        # Stage 4b: ε general exploration over ALL relaying options, which
        # keeps top-k honest under non-stationary performance (§4.5).
        if self.config.epsilon > 0.0 and self._rng.random() < self.config.epsilon:
            self.n_epsilon_explorations += 1
            if obs_runtime.enabled:
                self._obs_epsilon.inc()
            return norm_options[int(self._rng.integers(len(norm_options)))]
        if self.config.topk_mode == "argmin":
            if state.argmin_choice is not None:
                return state.argmin_choice
            return self._fallback(state.options)
        if self.config.selector == "greedy":
            return self._choose_greedy(state)
        assert state.bandit is not None
        if obs_runtime.enabled:
            with trace("bandit", k=len(state.topk)):
                return state.bandit.choose()
        return state.bandit.choose()

    def _divert_overloaded(self, state: _PairState, choice: RelayOption) -> RelayOption:
        """Per-relay cap exceeded: fall back to the best uncongested option.

        Walks the pair's top-k in predicted order and returns the first
        option whose relays are all under the cap; the direct path (never
        congested in this model) is the final fallback.
        """
        assert self._load_tracker is not None
        for candidate in state.topk:
            if candidate == choice:
                continue
            if not candidate.is_relayed or not self._load_tracker.would_exceed(candidate):
                return candidate
        return self._fallback(state.options)

    def _choose_greedy(self, state: _PairState) -> RelayOption:
        """ε-greedy over the candidate set on empirical means (Strawman II)."""
        candidates = state.topk
        if self._rng.random() < self.config.greedy_epsilon:
            return candidates[int(self._rng.integers(len(candidates)))]
        tried = [c for c in candidates if state.greedy_counts.get(c, 0) > 0]
        if not tried:
            return candidates[int(self._rng.integers(len(candidates)))]
        return min(
            tried, key=lambda c: state.greedy_sums[c] / state.greedy_counts[c]
        )

    # ------------------------------------------------------------------
    # Checkpointing (controller restarts, §7 operational concerns)
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-compatible checkpoint of everything worth surviving a crash.

        v2 persists the windowed history *and* the current period's per-pair
        bandit/greedy state, so a restored controller resumes mid-period
        with the same top-k and the same exploration counts instead of
        relearning from scratch (§7 operational concerns).
        """
        from repro.core.history import _encode_key, option_to_dict

        pair_states = []
        for (pair_key, direct_blocked), state in self._pair_state.items():
            entry: dict = {
                "pair": [_encode_key(pair_key[0]), _encode_key(pair_key[1])],
                "direct_blocked": bool(direct_blocked),
                "options": [option_to_dict(o) for o in state.options],
            }
            if state.bandit is not None:
                per_arm = state.bandit.export_state()
                entry["bandit"] = {
                    "arms": [option_to_dict(a) for a in state.bandit.arms],
                    "counts": [per_arm[a][0] for a in state.bandit.arms],
                    "cost_sums": [per_arm[a][1] for a in state.bandit.arms],
                    "max_seen_cost": state.bandit.max_seen_cost,
                }
            if state.greedy_counts:
                greedy_opts = list(state.greedy_counts)
                entry["greedy"] = {
                    "options": [option_to_dict(o) for o in greedy_opts],
                    "counts": [state.greedy_counts[o] for o in greedy_opts],
                    "sums": [state.greedy_sums.get(o, 0.0) for o in greedy_opts],
                }
            pair_states.append(entry)
        return {
            "format": "via-policy-state-v2",
            "metric": self.config.metric,
            "period": self._period,
            "n_refreshes": self.n_refreshes,
            # The RNG position matters for exact crash recovery: epsilon
            # exploration draws from it per assignment, so a restored
            # policy with a fresh RNG would diverge from its uninterrupted
            # twin on the very next call.  (Optional key: v2 checkpoints
            # without it still load, with a reseeded RNG.)
            "rng": self._rng.bit_generator.state,
            "n_epsilon_explorations": self.n_epsilon_explorations,
            "history": history_to_dict(self.history),
            "pair_states": pair_states,
        }

    def load_state_dict(self, payload: dict) -> None:
        """Restore a checkpoint produced by :meth:`state_dict`.

        Accepts both the v1 (history-only) and v2 (history + bandit)
        formats.  For v2, predictor/tomography and per-pair pruning are
        rebuilt deterministically from the restored history, then the
        saved exploration counts are overlaid onto the fresh bandits.
        """
        from repro.core.history import _decode_key, option_from_dict

        fmt = payload.get("format")
        if fmt not in ("via-policy-state-v1", "via-policy-state-v2"):
            raise ValueError(f"unrecognised checkpoint format: {fmt!r}")
        if payload.get("metric") != self.config.metric:
            raise ValueError(
                f"checkpoint optimises {payload.get('metric')!r}, "
                f"policy optimises {self.config.metric!r}"
            )
        self.history = history_from_dict(payload["history"])
        self._period = -1  # force a refresh on the next call
        self._pair_state = {}
        self._predictor = None
        rng_state = payload.get("rng")
        if rng_state is not None:
            self._rng.bit_generator.state = rng_state
        if "n_epsilon_explorations" in payload:
            self.n_epsilon_explorations = int(payload["n_epsilon_explorations"])
        if fmt == "via-policy-state-v1":
            return
        period = int(payload.get("period", -1))
        if period < 0:
            return
        saved_refreshes = payload.get("n_refreshes")
        self._refresh(period)
        for entry in payload.get("pair_states", ()):
            pair_key = (_decode_key(entry["pair"][0]), _decode_key(entry["pair"][1]))
            options = [option_from_dict(o) for o in entry["options"]]
            state = self._state_for(pair_key, bool(entry["direct_blocked"]), options)
            bandit_data = entry.get("bandit")
            if bandit_data is not None and state.bandit is not None:
                arms = [option_from_dict(o) for o in bandit_data["arms"]]
                state.bandit.restore_state(
                    {
                        arm: (int(count), float(cost_sum))
                        for arm, count, cost_sum in zip(
                            arms, bandit_data["counts"], bandit_data["cost_sums"]
                        )
                    },
                    max_seen_cost=float(bandit_data.get("max_seen_cost", 0.0)),
                )
            greedy = entry.get("greedy")
            if greedy:
                for opt_data, count, total in zip(
                    greedy["options"], greedy["counts"], greedy["sums"]
                ):
                    option = option_from_dict(opt_data)
                    state.greedy_counts[option] = int(count)
                    state.greedy_sums[option] = float(total)
        if saved_refreshes is not None:
            self.n_refreshes = int(saved_refreshes)

    def save_state(self, path) -> None:
        """Checkpoint learned state to ``path`` (JSON); see :meth:`state_dict`."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.state_dict()), encoding="utf-8")

    def load_state(self, path) -> None:
        """Restore a checkpoint written by :meth:`save_state`."""
        import json
        from pathlib import Path

        self.load_state_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def period(self) -> int:
        """The current refresh period index (-1 before the first call)."""
        return self._period

    def coverage_holes(self):
        """(pair_key, option) combinations with no prediction this period.

        These are the "holes" §7 of the paper proposes filling with active
        measurements: options the predictor could reach neither through
        direct history nor through tomography.  Yields pairs in the order
        they were first seen this period.
        """
        for (pair_key, _direct_blocked), state in self._pair_state.items():
            for option in state.options:
                if option not in state.predictions:
                    yield pair_key, option

    @property
    def relayed_fraction(self) -> float | None:
        """Fraction of calls relayed so far (only tracked under a budget)."""
        if self._budget_gate is None:
            return None
        return self._budget_gate.relayed_fraction


class VectorizedViaPolicy(ViaPolicy):
    """A :class:`ViaPolicy` whose scalar calls route through the vector path.

    ``assign``/``observe`` become batches of one, so every per-call code
    path runs the columnar implementation.  This exists for conformance:
    :func:`repro.verify.differential.run_differential` swaps it in as the
    production candidate to prove the vector machinery bit-identical to
    the scalar oracle -- same choices, same RNG draw order, same learned
    state -- across randomized configurations and call streams.
    """

    def assign(self, call: Call, options: list[RelayOption]) -> RelayOption:
        return self.assign_many([call], [options])[0]

    def observe(self, call: Call, option: RelayOption, metrics: PathMetrics) -> None:
        self.observe_many([call], [option], [metrics])


def make_policy(
    config: ViaConfig,
    *,
    inter_relay: InterRelayLookup | None = None,
    name: str | None = None,
    registry: MetricsRegistry | None = None,
) -> ViaPolicy:
    """Convenience constructor mirroring :class:`ViaPolicy`."""
    return ViaPolicy(config, inter_relay=inter_relay, name=name, registry=registry)
