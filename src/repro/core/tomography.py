"""Linear network tomography: stage 2 of the VIA pipeline (Figure 11).

Call history only covers (pair, option) combinations that were actually
used; data skew leaves "holes".  Tomography fills them: every relayed
observation is a *linear equation* over per-(side, relay) segment
unknowns:

* bounce via relay ``r``:    ``y = x[s, r] + x[d, r]``
* transit via ``r1 -> r2``:  ``y = x[s, r1] + inter(r1, r2) + x[d, r2]``

where ``inter`` is the provider's own (known) backbone performance -- the
paper likewise had Skype's inter-relay RTT/loss/jitter measurements.  We
solve the weighted least-squares system per metric with sparse LSQR and
*stitch* the estimated segments to predict any relay path, seen or unseen.

RTT and jitter are solved in their natural (additive) units; loss is
solved in the linearised ``-log(1 - loss)`` domain (§4.4 / [12]).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import lsqr

from repro.netmodel.metrics import PathMetrics, linear_to_loss, loss_to_linear
from repro.netmodel.options import OptionKind, RelayOption
from repro.core.history import RunningStat
from repro.obs.profiling import timed

__all__ = ["TomographyModel"]

SideKey = Hashable
SegmentKey = tuple[SideKey, int]
InterRelayLookup = Callable[[int, int], PathMetrics]

#: Metric floors after the unconstrained solve (LSQR can go slightly
#: negative on noisy systems); values are (rtt_ms, linear loss, jitter_ms).
_SEGMENT_FLOORS = np.array([0.5, 0.0, 0.02])


class TomographyModel:
    """Per-window segment estimates with a path-stitching predictor."""

    def __init__(
        self,
        estimates: dict[SegmentKey, np.ndarray],
        sems: dict[SegmentKey, np.ndarray],
        inter_relay: InterRelayLookup,
    ) -> None:
        self._estimates = estimates
        self._sems = sems
        self._inter_relay = inter_relay

    @property
    def n_segments(self) -> int:
        return len(self._estimates)

    def segment_estimate(self, side: SideKey, relay_id: int) -> np.ndarray | None:
        """Estimated (rtt, linear-loss, jitter) for one side<->relay segment."""
        value = self._estimates.get((side, relay_id))
        return None if value is None else value.copy()

    @classmethod
    @timed("tomography.fit")
    def fit(
        cls,
        observations: Iterable[tuple[tuple[SideKey, SideKey], RelayOption, RunningStat]],
        inter_relay: InterRelayLookup,
        *,
        min_count: int = 1,
        damp: float = 1e-3,
    ) -> "TomographyModel":
        """Fit segment unknowns from one window of relayed observations.

        ``observations`` yields (pair key, option, aggregate) triples in
        *canonical pair orientation* (see :class:`repro.core.keys.PairView`).
        Direct-path observations are ignored: the default path does not
        decompose into client<->relay segments.  ``damp`` is LSQR's Tikhonov
        damping, which stabilises under-determined corners of the system.
        """
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        b_rows: list[np.ndarray] = []
        weights: list[float] = []
        col_index: dict[SegmentKey, int] = {}
        col_weight: dict[int, float] = {}

        def column(side: SideKey, relay_id: int) -> int:
            key = (side, relay_id)
            idx = col_index.get(key)
            if idx is None:
                idx = len(col_index)
                col_index[key] = idx
            return idx

        n_rows = 0
        for (side_s, side_d), option, stat in observations:
            if option.kind is OptionKind.DIRECT or stat.count < min_count:
                continue
            mean = stat.mean
            target = np.array(
                [mean[0], loss_to_linear(float(np.clip(mean[1], 0.0, 1.0))), mean[2]]
            )
            if option.kind is OptionKind.BOUNCE:
                assert option.ingress is not None
                touched = [column(side_s, option.ingress), column(side_d, option.ingress)]
            else:
                assert option.ingress is not None and option.egress is not None
                inter = inter_relay(option.ingress, option.egress)
                target = target - np.array(
                    [inter.rtt_ms, loss_to_linear(inter.loss_rate), inter.jitter_ms]
                )
                touched = [column(side_s, option.ingress), column(side_d, option.egress)]
            weight = float(np.sqrt(stat.count))
            for col in touched:
                rows.append(n_rows)
                cols.append(col)
                data.append(weight)
                col_weight[col] = col_weight.get(col, 0.0) + stat.count
            b_rows.append(weight * target)
            weights.append(weight)
            n_rows += 1

        estimates: dict[SegmentKey, np.ndarray] = {}
        sems: dict[SegmentKey, np.ndarray] = {}
        if n_rows > 0 and col_index:
            n_cols = len(col_index)
            matrix = coo_matrix(
                (data, (rows, cols)), shape=(n_rows, n_cols)
            ).tocsr()
            b = np.vstack(b_rows)
            solution = np.empty((n_cols, 3))
            residual_sigma = np.empty(3)
            dof = max(1, n_rows - n_cols)
            for m in range(3):
                result = lsqr(matrix, b[:, m], damp=damp)
                solution[:, m] = result[0]
                residuals = matrix @ result[0] - b[:, m]
                residual_sigma[m] = float(np.sqrt(np.sum(residuals**2) / dof))
            solution = np.maximum(solution, _SEGMENT_FLOORS)
            for key, idx in col_index.items():
                estimates[key] = solution[idx]
                sems[key] = residual_sigma / np.sqrt(max(1.0, col_weight.get(idx, 1.0)))
        return cls(estimates=estimates, sems=sems, inter_relay=inter_relay)

    def predict(
        self, side_s: SideKey, side_d: SideKey, option: RelayOption
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Stitched (mean, sem) for a relay path, in raw metric units.

        Returns ``None`` for direct paths or when either segment estimate
        is missing.  Means come back as (rtt_ms, loss_rate, jitter_ms);
        loss is converted out of the linearised domain after stitching.
        """
        if option.kind is OptionKind.DIRECT:
            return None
        if option.kind is OptionKind.BOUNCE:
            assert option.ingress is not None
            seg_s = self._estimates.get((side_s, option.ingress))
            seg_d = self._estimates.get((side_d, option.ingress))
            sem_s = self._sems.get((side_s, option.ingress))
            sem_d = self._sems.get((side_d, option.ingress))
            inter_vec = np.zeros(3)
        else:
            assert option.ingress is not None and option.egress is not None
            seg_s = self._estimates.get((side_s, option.ingress))
            seg_d = self._estimates.get((side_d, option.egress))
            sem_s = self._sems.get((side_s, option.ingress))
            sem_d = self._sems.get((side_d, option.egress))
            inter = self._inter_relay(option.ingress, option.egress)
            inter_vec = np.array(
                [inter.rtt_ms, loss_to_linear(inter.loss_rate), inter.jitter_ms]
            )
        if seg_s is None or seg_d is None:
            return None
        assert sem_s is not None and sem_d is not None
        linear_mean = seg_s + seg_d + inter_vec
        mean = np.array(
            [linear_mean[0], linear_to_loss(float(linear_mean[1])), linear_mean[2]]
        )
        sem = np.sqrt(sem_s**2 + sem_d**2)
        # The loss SEM was estimated in the linearised domain; for small
        # losses d(loss)/d(linear) ~ 1, so reuse it directly.
        return mean, sem
