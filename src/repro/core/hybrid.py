"""Hybrid reactive relay selection: the §7 "Discussion" alternative, built.

The paper sketches a decentralised alternative to pure controller-driven
selection: let the client *try* several relaying options at the start of a
call and keep the best -- feasible for long calls, but wasteful without
guidance because the option space is large.  The hybrid the paper proposes
uses prediction-guided pruning to pick *which* few options to try.

:class:`HybridReactivePolicy` implements that: it reuses the VIA predictor
and dynamic top-k to nominate ``probe_top_n`` candidates, the replay
engine measures all candidates during the first ``probe_window_s`` of the
call (media rides the predicted-best candidate meanwhile), and the call
then switches to the observed winner.  The realised call quality is the
duration-weighted blend of the probe phase and the remainder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policy import ViaConfig, ViaPolicy
from repro.netmodel.metrics import PathMetrics, linear_to_loss, loss_to_linear
from repro.netmodel.options import RelayOption
from repro.telephony.call import Call

__all__ = ["ProbePlan", "HybridReactivePolicy", "blend_call_metrics"]


@dataclass(frozen=True, slots=True)
class ProbePlan:
    """In-call probe instruction: measure ``candidates``, start on ``primary``."""

    candidates: tuple[RelayOption, ...]
    primary: RelayOption

    def __post_init__(self) -> None:
        if len(self.candidates) < 2:
            raise ValueError("probing needs at least two candidates")
        if self.primary not in self.candidates:
            raise ValueError("primary must be one of the candidates")
        if len(set(self.candidates)) != len(self.candidates):
            raise ValueError("duplicate candidates")


def blend_call_metrics(
    probe_phase: PathMetrics, rest_phase: PathMetrics, probe_weight: float
) -> PathMetrics:
    """Duration-weighted average of the two call phases.

    RTT and jitter blend linearly; loss blends in the linearised domain
    (equivalent to the packet-weighted survival rate for small losses).
    """
    if not 0.0 <= probe_weight <= 1.0:
        raise ValueError(f"probe_weight must be in [0, 1]: {probe_weight}")
    w = probe_weight
    return PathMetrics(
        rtt_ms=w * probe_phase.rtt_ms + (1.0 - w) * rest_phase.rtt_ms,
        loss_rate=linear_to_loss(
            w * loss_to_linear(probe_phase.loss_rate)
            + (1.0 - w) * loss_to_linear(rest_phase.loss_rate)
        ),
        jitter_ms=w * probe_phase.jitter_ms + (1.0 - w) * rest_phase.jitter_ms,
    )


class HybridReactivePolicy(ViaPolicy):
    """VIA's prediction-guided pruning + in-call reactive switching.

    For calls long enough to amortise a probe window, :meth:`plan_probe`
    nominates the best-predicted ``probe_top_n`` options; the replay
    engine measures them concurrently and calls :meth:`commit_probe`,
    which picks the observed winner on the optimised metric.  Short calls
    fall back to plain Algorithm-1 assignment.
    """

    def __init__(
        self,
        config: ViaConfig | None = None,
        *,
        inter_relay=None,
        name: str | None = None,
        probe_top_n: int = 2,
        probe_window_s: float = 10.0,
        min_duration_s: float = 60.0,
    ) -> None:
        if probe_top_n < 2:
            raise ValueError("probe_top_n must be >= 2")
        if probe_window_s <= 0.0 or min_duration_s <= 0.0:
            raise ValueError("durations must be positive")
        super().__init__(config, inter_relay=inter_relay, name=name or "hybrid-reactive")
        self.probe_top_n = probe_top_n
        self.probe_window_s = probe_window_s
        self.min_duration_s = min_duration_s
        self.n_probed_calls = 0

    def plan_probe(self, call: Call, options: list[RelayOption]) -> ProbePlan | None:
        """Nominate probe candidates for a call, or None to assign normally."""
        if call.duration_s < self.min_duration_s:
            return None
        # Reuse Algorithm 1's periodic refresh + pruning machinery.
        period = int(call.t_hours // self.config.refresh_hours)
        if period != self._period:
            self._refresh(period)
        view = self._keyer.view(call)
        norm_options = [view.normalize(o) for o in options]
        state = self._state_for(view.pair_key, call.direct_blocked, norm_options)
        candidates = state.topk[: self.probe_top_n]
        if len(candidates) < 2:
            return None
        self.n_probed_calls += 1
        return ProbePlan(
            candidates=tuple(view.denormalize(c) for c in candidates),
            primary=view.denormalize(candidates[0]),
        )

    def probe_weight(self, call: Call) -> float:
        """Fraction of the call spent in the probe window."""
        return min(1.0, self.probe_window_s / call.duration_s)

    def commit_probe(
        self,
        call: Call,
        plan: ProbePlan,
        samples: dict[RelayOption, PathMetrics],
    ) -> RelayOption:
        """Pick the observed winner and learn from every probe sample."""
        missing = [c for c in plan.candidates if c not in samples]
        if missing:
            raise ValueError(f"samples missing for candidates: {missing}")
        for option, metrics in samples.items():
            self.observe(call, option, metrics)
        return min(
            plan.candidates, key=lambda c: self._cost.call_cost(samples[c])
        )
