"""Modified UCB1 exploration-exploitation: Algorithm 3 of the paper.

Standard UCB1 maximises normalised rewards in [0, 1]; VIA minimises a
network metric whose distribution has heavy outliers, so two changes are
made (§4.5):

1. **Normalisation** -- costs are divided by the *average upper 95%
   confidence bound of the top-k candidates* rather than the observed
   range, so one outlier RTT cannot compress the common case into
   indistinguishability.  (The ``classic`` mode implements range
   normalisation for the Figure 15 ablation.)
2. **General exploration** -- the ε fraction of calls routed to random
   options *outside* the top-k lives in the policy (Algorithm 1), keeping
   the bandit honest under non-stationary rewards.

The selection rule is the paper's:

    ucb(r) = mean_cost(r) / w  -  sqrt(coef * log T / n_r),      pick argmin
"""

from __future__ import annotations

import math

from repro.core.predictor import Prediction
from repro.netmodel.options import RelayOption

__all__ = ["UCB1Explorer"]


class UCB1Explorer:
    """One pair's bandit over its top-k relaying options.

    ``arms`` must be ordered best-predicted-first: untried arms are played
    in that order before any UCB comparison happens (standard UCB1
    initialisation, seeded by the predictor's ranking).
    """

    def __init__(
        self,
        arms: list[RelayOption],
        *,
        normalizer: float,
        exploration_coef: float = 0.1,
        mode: str = "via",
    ) -> None:
        if not arms:
            raise ValueError("bandit needs at least one arm")
        if len(set(arms)) != len(arms):
            raise ValueError("duplicate arms")
        if normalizer <= 0.0:
            raise ValueError(f"normalizer must be positive: {normalizer}")
        if mode not in ("via", "classic"):
            raise ValueError(f"mode must be 'via' or 'classic': {mode!r}")
        self.arms = list(arms)
        self.mode = mode
        self.exploration_coef = exploration_coef
        self._normalizer = normalizer
        self._counts: dict[RelayOption, int] = {arm: 0 for arm in arms}
        self._cost_sums: dict[RelayOption, float] = {arm: 0.0 for arm in arms}
        self._total_plays = 0
        self._max_seen_cost = 0.0

    @classmethod
    def from_predictions(
        cls,
        arms: list[RelayOption],
        predictions: dict[RelayOption, Prediction],
        metric_idx: int,
        *,
        exploration_coef: float = 0.1,
        mode: str = "via",
    ) -> "UCB1Explorer":
        """Build with the paper's normaliser: mean of top-k upper bounds."""
        uppers = [
            predictions[arm].upper(metric_idx) for arm in arms if arm in predictions
        ]
        normalizer = max(1e-9, sum(uppers) / len(uppers)) if uppers else 1.0
        return cls(
            arms, normalizer=normalizer, exploration_coef=exploration_coef, mode=mode
        )

    @classmethod
    def from_cost_model(
        cls,
        arms: list[RelayOption],
        predictions: dict[RelayOption, Prediction],
        cost_model,
        *,
        exploration_coef: float = 0.1,
        mode: str = "via",
    ) -> "UCB1Explorer":
        """As :meth:`from_predictions` but for any cost model (e.g. MOS)."""
        uppers = [
            cost_model.predicted_upper(predictions[arm])
            for arm in arms
            if arm in predictions
        ]
        normalizer = max(1e-9, sum(uppers) / len(uppers)) if uppers else 1.0
        return cls(
            arms, normalizer=normalizer, exploration_coef=exploration_coef, mode=mode
        )

    @property
    def total_plays(self) -> int:
        return self._total_plays

    @property
    def max_seen_cost(self) -> float:
        return self._max_seen_cost

    def count(self, arm: RelayOption) -> int:
        return self._counts[arm]

    def has_arm(self, arm: RelayOption) -> bool:
        """O(1) membership test (the vector observe path's arm gate)."""
        return arm in self._counts

    def mean_cost(self, arm: RelayOption) -> float | None:
        n = self._counts[arm]
        if n == 0:
            return None
        return self._cost_sums[arm] / n

    def choose(self) -> RelayOption:
        """Pick the next arm: untried arms first, then minimal UCB index."""
        for arm in self.arms:
            if self._counts[arm] == 0:
                return arm
        log_t = math.log(self._total_plays + 1)
        normalizer = self._effective_normalizer()
        best_arm = self.arms[0]
        best_index = math.inf
        for arm in self.arms:
            n = self._counts[arm]
            mean = self._cost_sums[arm] / n
            index = mean / normalizer - math.sqrt(self.exploration_coef * log_t / n)
            if index < best_index:
                best_index = index
                best_arm = arm
        return best_arm

    def update(self, arm: RelayOption, cost: float) -> None:
        """Fold one observed cost (the realised metric value) into an arm."""
        if arm not in self._counts:
            raise KeyError(f"unknown arm {arm}")
        if cost < 0.0 or math.isnan(cost):
            raise ValueError(f"cost must be a non-negative number: {cost}")
        self._counts[arm] += 1
        self._cost_sums[arm] += cost
        self._total_plays += 1
        self._max_seen_cost = max(self._max_seen_cost, cost)

    def update_many(self, arm, costs) -> None:
        """Fold many observed costs into one arm, bit-identical to a loop
        of :meth:`update` calls.

        Per-arm cost sums are folded in sequence order (float addition is
        order-sensitive); ``total_plays`` and ``max_seen_cost`` are
        order-independent, so interleaving updates across *different* arms
        commutes -- which is what lets the vector observe path group a
        batch by arm.  Costs are coerced to Python floats so checkpoint
        serialisation keeps seeing plain JSON-encodable numbers.  On an
        invalid cost the whole batch is rejected without partial effect
        (the one place the scalar loop, which applies prefixes before
        raising, differs).
        """
        if arm not in self._counts:
            raise KeyError(f"unknown arm {arm}")
        total = self._cost_sums[arm]
        worst = self._max_seen_cost
        n = 0
        for cost in costs:
            cost = float(cost)
            if cost < 0.0 or math.isnan(cost):
                raise ValueError(f"cost must be a non-negative number: {cost}")
            total += cost
            if cost > worst:
                worst = cost
            n += 1
        self._counts[arm] += n
        self._cost_sums[arm] = total
        self._total_plays += n
        self._max_seen_cost = worst

    def _effective_normalizer(self) -> float:
        if self.mode == "via":
            return self._normalizer
        # Classic UCB1 emulation: normalise by the observed cost range so
        # outliers compress the scale (what Figure 15 shows going wrong).
        return max(self._max_seen_cost, 1e-9)

    def export_state(self) -> dict[RelayOption, tuple[int, float]]:
        """Per-arm (count, cost_sum) pairs, for controller checkpointing."""
        return {arm: (self._counts[arm], self._cost_sums[arm]) for arm in self.arms}

    def restore_state(
        self,
        per_arm: dict[RelayOption, tuple[int, float]],
        *,
        max_seen_cost: float = 0.0,
    ) -> None:
        """Overlay (count, cost_sum) pairs exported by :meth:`export_state`.

        Arms unknown to this bandit are ignored -- the candidate set may
        have shifted between checkpoint and restore; total plays are
        recomputed from the restored counts.
        """
        for arm, (count, cost_sum) in per_arm.items():
            if arm in self._counts:
                self._counts[arm] = int(count)
                self._cost_sums[arm] = float(cost_sum)
        self._total_plays = sum(self._counts.values())
        self._max_seen_cost = max(self._max_seen_cost, float(max_seen_cost))

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Diagnostic view of per-arm state (for logs and tests)."""
        return {
            str(arm): {
                "count": float(self._counts[arm]),
                "mean_cost": float(self._cost_sums[arm] / self._counts[arm])
                if self._counts[arm]
                else float("nan"),
            }
            for arm in self.arms
        }
