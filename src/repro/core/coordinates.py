"""Vivaldi network coordinates: the coordinate-based prediction alternative.

The paper's related work contrasts its tomography with coordinate-based
Internet distance prediction (Vivaldi [18], GNP-style approaches [29]).
Tomography covers *relay* paths (they decompose into shared segments);
what it cannot predict is the **direct path of a never-seen AS pair**.
A coordinate embedding can: every observed direct-path RTT is a spring
constraint between two AS coordinates, and unseen pair RTTs fall out as
coordinate distances.

This module implements the decentralised Vivaldi algorithm (Dabek et al.,
SIGCOMM 2004) with the height-vector model (vector part = wide-area
distance, height = access-link penalty), plus adaptive timesteps driven by
per-node error estimates.  :class:`CoordinateSystem.estimate_rtt` then
serves as an optional direct-path fallback inside the VIA predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

__all__ = ["VivaldiConfig", "NodeCoordinate", "CoordinateSystem"]


@dataclass(frozen=True, slots=True)
class VivaldiConfig:
    """Vivaldi tuning constants (defaults follow the original paper)."""

    dimensions: int = 4
    #: ce -- how fast the per-node error estimate adapts.
    error_gain: float = 0.25
    #: cc -- fraction of the prediction error corrected per update.
    position_gain: float = 0.25
    min_height_ms: float = 0.1
    initial_error: float = 1.0
    seed: int = 20040830  # SIGCOMM'04, where Vivaldi was published

    def __post_init__(self) -> None:
        if self.dimensions < 1:
            raise ValueError("dimensions must be >= 1")
        if not 0.0 < self.error_gain <= 1.0 or not 0.0 < self.position_gain <= 1.0:
            raise ValueError("gains must be in (0, 1]")
        if self.min_height_ms < 0.0:
            raise ValueError("min_height_ms must be >= 0")


@dataclass(slots=True)
class NodeCoordinate:
    """One node's position: Euclidean vector + access-link height."""

    vector: np.ndarray
    height: float
    error: float
    n_updates: int = 0

    def distance_to(self, other: "NodeCoordinate") -> float:
        """Predicted RTT between two nodes (ms)."""
        return float(np.linalg.norm(self.vector - other.vector)) + self.height + other.height


class CoordinateSystem:
    """A Vivaldi embedding learned from observed pairwise RTTs.

    Nodes (any hashable keys -- AS numbers here) are created lazily at the
    origin with small random jitter; each :meth:`observe` performs one
    symmetric spring relaxation step.
    """

    def __init__(self, config: VivaldiConfig | None = None) -> None:
        self.config = config or VivaldiConfig()
        self._nodes: dict[Hashable, NodeCoordinate] = {}
        self._rng = np.random.default_rng(self.config.seed)
        self.n_observations = 0

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, key: Hashable) -> NodeCoordinate:
        """The node's coordinate, creating a fresh one if unknown."""
        coordinate = self._nodes.get(key)
        if coordinate is None:
            coordinate = NodeCoordinate(
                vector=self._rng.normal(0.0, 0.1, self.config.dimensions),
                height=self.config.min_height_ms,
                error=self.config.initial_error,
            )
            self._nodes[key] = coordinate
        return coordinate

    def observe(self, a: Hashable, b: Hashable, rtt_ms: float) -> None:
        """Fold one measured RTT between nodes ``a`` and ``b``.

        Both endpoints move (the controller sees both sides), which halves
        convergence time versus the one-sided client protocol.
        """
        if a == b:
            return  # self-distances carry no embedding information
        if rtt_ms <= 0.0 or not np.isfinite(rtt_ms):
            raise ValueError(f"rtt_ms must be positive and finite: {rtt_ms}")
        self.n_observations += 1
        self._update_one(self.node(a), self.node(b), rtt_ms)
        self._update_one(self.node(b), self.node(a), rtt_ms)

    def _update_one(self, node: NodeCoordinate, peer: NodeCoordinate, rtt_ms: float) -> None:
        cfg = self.config
        predicted = node.distance_to(peer)
        error = rtt_ms - predicted

        # Confidence weighting: certain nodes move less.
        weight = node.error / max(1e-9, node.error + peer.error)
        relative_error = abs(error) / rtt_ms
        node.error = min(
            cfg.initial_error,
            relative_error * cfg.error_gain * weight
            + node.error * (1.0 - cfg.error_gain * weight),
        )

        step = cfg.position_gain * weight * error
        direction = node.vector - peer.vector
        norm = float(np.linalg.norm(direction))
        if norm < 1e-9:
            direction = self._rng.normal(0.0, 1.0, cfg.dimensions)
            norm = float(np.linalg.norm(direction))
        node.vector = node.vector + step * direction / norm
        # Heights absorb the share of the path the vector space cannot:
        # they grow/shrink proportionally to their part of the prediction.
        if predicted > 0.0:
            height_share = (node.height + peer.height) / predicted
            node.height = max(cfg.min_height_ms, node.height + step * height_share)
        node.n_updates += 1

    def estimate_rtt(self, a: Hashable, b: Hashable, *, min_updates: int = 5) -> float | None:
        """Predicted RTT between two (possibly never co-observed) nodes.

        Returns ``None`` unless both endpoints have been embedded with at
        least ``min_updates`` observations each -- fresh coordinates sit
        near the origin and would predict nonsense.
        """
        node_a = self._nodes.get(a)
        node_b = self._nodes.get(b)
        if node_a is None or node_b is None:
            return None
        if node_a.n_updates < min_updates or node_b.n_updates < min_updates:
            return None
        return node_a.distance_to(node_b)

    def estimation_confidence(self, a: Hashable, b: Hashable) -> float | None:
        """Combined relative error estimate of the two endpoints (0 = exact)."""
        node_a = self._nodes.get(a)
        node_b = self._nodes.get(b)
        if node_a is None or node_b is None:
            return None
        return float(np.sqrt(node_a.error * node_b.error))
