"""Analysis: PNR, distributions, spatial and temporal patterns, reporting.

Implements every measurement the paper's evaluation uses: the poor-network
thresholds and PNR (§2.2), CDFs and percentile improvements (Fig 2, 12b),
binned PCR curves and metric correlations (Fig 1, 3), spatial dissection
(Fig 4, 5, 13, 14), and temporal persistence/prevalence/option-duration
(Fig 6, 9).
"""

from repro.analysis.thresholds import (
    POOR_JITTER_MS,
    POOR_LOSS_RATE,
    POOR_RTT_MS,
    Thresholds,
    DEFAULT_THRESHOLDS,
)
from repro.analysis.pnr import (
    at_least_one_bad,
    is_poor,
    pnr,
    pnr_breakdown,
    pnr_with_sem,
    relative_improvement,
)
from repro.analysis.stats import (
    binned_curve,
    cdf_points,
    pearson_correlation,
    percentile_improvement,
    percentile_summary,
)
from repro.analysis.spatial import (
    by_country_pnr,
    pair_contribution_curve,
    split_international,
)
from repro.analysis.temporal import (
    best_option_durations,
    daily_pair_pnr,
    persistence_and_prevalence,
)
from repro.analysis.reporting import format_series, format_table
from repro.analysis.summary import experiment_report

__all__ = [
    "POOR_RTT_MS",
    "POOR_LOSS_RATE",
    "POOR_JITTER_MS",
    "Thresholds",
    "DEFAULT_THRESHOLDS",
    "is_poor",
    "at_least_one_bad",
    "pnr",
    "pnr_with_sem",
    "pnr_breakdown",
    "relative_improvement",
    "cdf_points",
    "binned_curve",
    "pearson_correlation",
    "percentile_improvement",
    "percentile_summary",
    "split_international",
    "by_country_pnr",
    "pair_contribution_curve",
    "daily_pair_pnr",
    "persistence_and_prevalence",
    "best_option_durations",
    "format_table",
    "format_series",
    "experiment_report",
]
