"""Poor Network Rate (PNR): the paper's headline statistic.

PNR of a metric over a set of calls = fraction of calls whose average
value of that metric is beyond the poor threshold.  The combined
"at least one bad" PNR counts calls poor on *any* metric.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.thresholds import DEFAULT_THRESHOLDS, Thresholds
from repro.netmodel.metrics import METRICS, PathMetrics
from repro.telephony.call import CallOutcome

__all__ = [
    "is_poor",
    "at_least_one_bad",
    "pnr",
    "pnr_with_sem",
    "pnr_breakdown",
    "relative_improvement",
]


def is_poor(
    metrics: PathMetrics, metric: str, thresholds: Thresholds = DEFAULT_THRESHOLDS
) -> bool:
    """Is one call poor on one named metric?"""
    return thresholds.is_poor(metrics, metric)


def at_least_one_bad(
    metrics: PathMetrics, thresholds: Thresholds = DEFAULT_THRESHOLDS
) -> bool:
    """Is one call poor on any of the three metrics?"""
    return thresholds.any_poor(metrics)


def pnr(
    outcomes: Iterable[CallOutcome],
    metric: str | None = None,
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
) -> float:
    """PNR over outcomes; ``metric=None`` means "at least one bad".

    Returns 0.0 for an empty population (so improvement math stays
    well-defined on degenerate slices).
    """
    total = 0
    poor = 0
    for outcome in outcomes:
        total += 1
        if metric is None:
            poor += thresholds.any_poor(outcome.metrics)
        else:
            poor += thresholds.is_poor(outcome.metrics, metric)
    if total == 0:
        return 0.0
    return poor / total


def pnr_with_sem(
    outcomes: Sequence[CallOutcome],
    metric: str | None = None,
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
) -> tuple[float, float]:
    """(PNR, standard error) -- the paper adds SEM error bars to its plots.

    PNR is a binomial proportion, so ``sem = sqrt(p (1 - p) / n)``.
    Returns (0, 0) for an empty population.
    """
    n = len(outcomes)
    if n == 0:
        return (0.0, 0.0)
    p = pnr(outcomes, metric, thresholds)
    return (p, (p * (1.0 - p) / n) ** 0.5)


def pnr_breakdown(
    outcomes: Sequence[CallOutcome], thresholds: Thresholds = DEFAULT_THRESHOLDS
) -> dict[str, float]:
    """PNR per metric plus the combined "any" PNR, in one pass."""
    counts = {metric: 0 for metric in METRICS}
    any_poor = 0
    total = 0
    for outcome in outcomes:
        total += 1
        bad = False
        for metric in METRICS:
            if thresholds.is_poor(outcome.metrics, metric):
                counts[metric] += 1
                bad = True
        any_poor += bad
    if total == 0:
        return {**{metric: 0.0 for metric in METRICS}, "any": 0.0}
    result = {metric: counts[metric] / total for metric in METRICS}
    result["any"] = any_poor / total
    return result


def relative_improvement(baseline: float, improved: float) -> float:
    """The paper's improvement statistic: ``100 * (b - a) / b`` percent.

    Positive = better (the statistic went down).  Returns 0 when the
    baseline is 0 (nothing to improve).
    """
    if baseline <= 0.0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline
