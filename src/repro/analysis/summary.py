"""Whole-experiment reporting: one call, the full evaluation story.

``experiment_report`` takes the replay results of a policy suite and
renders the §5-style summary -- PNR per metric with SEM error bars (the
paper adds standard-error bars to every plot), relative improvements,
percentile improvements, relay mix, and the international/domestic
split -- as one text block.  Used by the CLI and handy in notebooks.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.pnr import pnr_breakdown, pnr_with_sem, relative_improvement
from repro.analysis.reporting import format_table
from repro.analysis.spatial import split_international
from repro.analysis.stats import percentile_improvement
from repro.netmodel.metrics import METRICS
from repro.simulation.replay import ReplayResult
from repro.telephony.call import CallOutcome

__all__ = ["experiment_report"]


def experiment_report(
    evaluated: dict[str, list[CallOutcome]],
    *,
    metric: str = "rtt_ms",
    baseline: str = "default",
    results: dict[str, ReplayResult] | None = None,
    percentiles: Sequence[float] = (50, 90),
) -> str:
    """Render the full comparison of a policy suite.

    ``evaluated`` maps strategy name to its evaluation-slice outcomes
    (from :meth:`repro.simulation.ExperimentPlan.evaluate`); ``baseline``
    names the reference strategy for improvements.  ``results`` optionally
    supplies the raw :class:`ReplayResult` objects so the relay mix can be
    reported.
    """
    if baseline not in evaluated:
        raise KeyError(f"baseline {baseline!r} missing from results")
    base_out = evaluated[baseline]
    base = pnr_breakdown(base_out)
    shown_metric = metric if metric in METRICS else "any"

    # --- PNR table with SEM error bars --------------------------------
    pnr_rows = []
    for name, outcomes in evaluated.items():
        cells = [name]
        for m in (*METRICS, "any"):
            value, sem = pnr_with_sem(outcomes, None if m == "any" else m)
            cells.append(f"{value:.3f}±{sem:.3f}")
        cells.append(
            f"{relative_improvement(base[shown_metric], pnr_breakdown(outcomes)[shown_metric]):.0f}%"
        )
        pnr_rows.append(cells)
    blocks = [
        format_table(
            ["strategy", "PNR(rtt)", "PNR(loss)", "PNR(jitter)", "PNR(any)",
             f"impr({shown_metric})"],
            pnr_rows,
            title=f"PNR by strategy ({len(base_out)} evaluated calls)",
        )
    ]

    # --- percentile improvements over the baseline ---------------------
    if shown_metric in METRICS:
        base_values = [o.metrics.get(shown_metric) for o in base_out]
        rows = []
        for name, outcomes in evaluated.items():
            if name == baseline or not outcomes:
                continue
            values = [o.metrics.get(shown_metric) for o in outcomes]
            improvements = percentile_improvement(base_values, values, percentiles)
            rows.append(
                [name, *(f"{improvements[float(p)]:.0f}%" for p in percentiles)]
            )
        if rows:
            blocks.append(format_table(
                ["strategy", *(f"p{int(p)} impr" for p in percentiles)],
                rows,
                title=f"Percentile improvements on {shown_metric} (Fig 12b method)",
            ))

    # --- international vs domestic ------------------------------------
    split_rows = []
    for name, outcomes in evaluated.items():
        intl, dom = split_international(outcomes)
        split_rows.append([
            name,
            f"{pnr_breakdown(intl)[shown_metric if shown_metric in METRICS else 'any']:.3f}",
            f"{pnr_breakdown(dom)[shown_metric if shown_metric in METRICS else 'any']:.3f}",
        ])
    blocks.append(format_table(
        ["strategy", "international PNR", "domestic PNR"],
        split_rows,
        title="International vs domestic (Fig 13)",
    ))

    # --- relay mix ------------------------------------------------------
    if results:
        mix_rows = []
        for name, result in results.items():
            mix = result.option_mix()
            mix_rows.append([
                name,
                f"{mix.get('direct', 0.0):.1%}",
                f"{mix.get('bounce', 0.0):.1%}",
                f"{mix.get('transit', 0.0):.1%}",
            ])
        blocks.append(format_table(
            ["strategy", "direct", "bounce", "transit"],
            mix_rows,
            title="Relay mix (§5.2)",
        ))

    return "\n\n".join(blocks)
