"""Poor-network-performance thresholds (§2.2 of the paper).

The paper picks RTT >= 320 ms, loss >= 1.2%, jitter >= 12 ms -- chosen so
that a bit over 15% of default-routed calls are "poor" on each metric,
consistent with ITU guidance (G.114's 150 ms one-way delay, ~1% loss).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netmodel.metrics import METRICS, PathMetrics

__all__ = [
    "POOR_RTT_MS",
    "POOR_LOSS_RATE",
    "POOR_JITTER_MS",
    "Thresholds",
    "DEFAULT_THRESHOLDS",
]

POOR_RTT_MS = 320.0
POOR_LOSS_RATE = 0.012
POOR_JITTER_MS = 12.0


@dataclass(frozen=True, slots=True)
class Thresholds:
    """A (rtt, loss, jitter) poor-performance threshold triple."""

    rtt_ms: float = POOR_RTT_MS
    loss_rate: float = POOR_LOSS_RATE
    jitter_ms: float = POOR_JITTER_MS

    def __post_init__(self) -> None:
        if self.rtt_ms <= 0 or self.loss_rate <= 0 or self.jitter_ms <= 0:
            raise ValueError("thresholds must be positive")

    def get(self, metric: str) -> float:
        if metric not in METRICS:
            raise KeyError(f"unknown metric {metric!r}; expected one of {METRICS}")
        return getattr(self, metric)

    def is_poor(self, metrics: PathMetrics, metric: str) -> bool:
        """Is the call poor on one named metric?"""
        return metrics.get(metric) >= self.get(metric)

    def any_poor(self, metrics: PathMetrics) -> bool:
        """Is at least one of the three metrics poor ("at least one bad")?"""
        return any(self.is_poor(metrics, metric) for metric in METRICS)


DEFAULT_THRESHOLDS = Thresholds()
