"""Plain-text rendering of tables and series for the benchmark harness.

Every bench prints the rows/series of its paper table or figure through
these helpers, so outputs are uniform and easy to diff against
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    points: Sequence[tuple[object, object]],
    *,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render an (x, y) series as labelled rows (one figure curve)."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in points:
        lines.append(f"  {_fmt(x):>12} -> {_fmt(y)}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0.0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:.3f}".rstrip("0").rstrip(".") if value % 1 else f"{value:.0f}"
    return str(value)
