"""Temporal patterns: persistence, prevalence, best-option duration.

Implements §2.4 (Figure 6) and the Figure 9 analysis:

* an AS pair has *high PNR* on a day when its PNR is at least 50% above
  the overall PNR of all calls that day,
* **persistence** = the median length (days) of its consecutive high-PNR
  stretches; **prevalence** = the fraction of its active days that are
  high-PNR,
* **best-option duration** = how long the oracle's choice for a pair
  stays the same (Figure 9's case for dynamic selection).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from repro.analysis.pnr import pnr
from repro.analysis.thresholds import DEFAULT_THRESHOLDS, Thresholds
from repro.telephony.call import CallOutcome

__all__ = [
    "daily_pair_pnr",
    "persistence_and_prevalence",
    "best_option_durations",
]


def daily_pair_pnr(
    outcomes: Sequence[CallOutcome],
    metric: str | None = None,
    *,
    min_calls_per_day: int = 5,
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
) -> tuple[dict[tuple[int, int], dict[int, float]], dict[int, float]]:
    """(per-pair daily PNR, overall daily PNR).

    Pair-days with fewer than ``min_calls_per_day`` calls are dropped
    (too noisy to label), mirroring the paper's conservatism.
    """
    by_pair_day: dict[tuple[int, int], dict[int, list[CallOutcome]]] = defaultdict(
        lambda: defaultdict(list)
    )
    by_day: dict[int, list[CallOutcome]] = defaultdict(list)
    for outcome in outcomes:
        day = outcome.call.day
        by_pair_day[outcome.call.as_pair][day].append(outcome)
        by_day[day].append(outcome)
    pair_pnr: dict[tuple[int, int], dict[int, float]] = {}
    for pair, days in by_pair_day.items():
        series = {
            day: pnr(calls, metric, thresholds)
            for day, calls in days.items()
            if len(calls) >= min_calls_per_day
        }
        if series:
            pair_pnr[pair] = series
    overall = {day: pnr(calls, metric, thresholds) for day, calls in by_day.items()}
    return pair_pnr, overall


def _high_pnr_flags(
    series: dict[int, float], overall: dict[int, float], factor: float
) -> list[tuple[int, bool]]:
    flags = []
    for day in sorted(series):
        baseline = overall.get(day, 0.0)
        flags.append((day, series[day] >= factor * baseline and series[day] > 0.0))
    return flags


def persistence_and_prevalence(
    pair_pnr: dict[tuple[int, int], dict[int, float]],
    overall: dict[int, float],
    *,
    factor: float = 1.5,
) -> tuple[list[float], list[float]]:
    """(persistence values, prevalence values) across high-PNR AS pairs.

    ``factor`` = 1.5 implements "PNR at least 50% higher than the overall
    PNR of all calls on that day".  Pairs that are never high-PNR are
    excluded (the paper plots the distribution over high-PNR pairs).
    """
    persistences: list[float] = []
    prevalences: list[float] = []
    for series in pair_pnr.values():
        flags = _high_pnr_flags(series, overall, factor)
        high_days = [day for day, high in flags if high]
        if not high_days:
            continue
        prevalences.append(len(high_days) / len(flags))
        # Streaks of consecutive high days (calendar-consecutive).
        streaks: list[int] = []
        run = 1
        for prev, cur in zip(high_days, high_days[1:]):
            if cur == prev + 1:
                run += 1
            else:
                streaks.append(run)
                run = 1
        streaks.append(run)
        persistences.append(float(np.median(streaks)))
    return persistences, prevalences


def best_option_durations(
    best_by_day: dict[tuple[int, int], dict[int, object]],
) -> list[float]:
    """Median run length (days) of each pair's oracle-best option (Fig 9).

    ``best_by_day[pair][day]`` is any hashable identifier of the best
    relaying option for that pair/day.  For each pair we compute run
    lengths of identical consecutive choices and keep the median.
    """
    durations: list[float] = []
    for days in best_by_day.values():
        ordered = [days[day] for day in sorted(days)]
        if not ordered:
            continue
        runs: list[int] = []
        run = 1
        for prev, cur in zip(ordered, ordered[1:]):
            if cur == prev:
                run += 1
            else:
                runs.append(run)
                run = 1
        runs.append(run)
        durations.append(float(np.median(runs)))
    return durations
