"""Distribution statistics: CDFs, binned curves, percentile improvements.

The building blocks behind Figures 1-3 (metric distributions and their
relationship to PCR) and Figure 12b (improvement computed *between
percentiles* of two strategies' distributions, which avoids per-call
pairing bias -- the paper's method).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "cdf_points",
    "binned_curve",
    "binned_quantile_bands",
    "BinnedPoint",
    "QuantileBand",
    "pearson_correlation",
    "percentile_improvement",
    "percentile_summary",
]


def cdf_points(values: Sequence[float], n_points: int = 100) -> list[tuple[float, float]]:
    """(value, cumulative fraction) points of the empirical CDF."""
    if n_points < 2:
        raise ValueError("n_points must be >= 2")
    array = np.sort(np.asarray(list(values), dtype=float))
    if array.size == 0:
        return []
    fractions = np.linspace(0.0, 1.0, n_points)
    quantiles = np.quantile(array, fractions)
    return [(float(q), float(f)) for q, f in zip(quantiles, fractions)]


@dataclass(frozen=True, slots=True)
class BinnedPoint:
    """One bin of a binned-statistic curve."""

    bin_center: float
    value: float
    n_samples: int


def binned_curve(
    x: Sequence[float],
    y: Sequence[float],
    *,
    n_bins: int = 20,
    min_samples: int = 1000,
    x_max_quantile: float = 0.99,
) -> list[BinnedPoint]:
    """Mean of ``y`` binned by ``x`` (the Figure 1 construction).

    Bins with fewer than ``min_samples`` points are dropped, mirroring the
    paper's ">= 1000 samples per bin for statistical significance".  The
    top ``1 - x_max_quantile`` of x is excluded so one outlier cannot
    stretch the binning.
    """
    xs = np.asarray(list(x), dtype=float)
    ys = np.asarray(list(y), dtype=float)
    if xs.shape != ys.shape:
        raise ValueError("x and y must align")
    if xs.size == 0:
        return []
    x_max = float(np.quantile(xs, x_max_quantile))
    x_min = float(xs.min())
    if x_max <= x_min:
        return [BinnedPoint(bin_center=x_min, value=float(ys.mean()), n_samples=int(xs.size))]
    edges = np.linspace(x_min, x_max, n_bins + 1)
    indices = np.clip(np.digitize(xs, edges) - 1, 0, n_bins - 1)
    points: list[BinnedPoint] = []
    for b in range(n_bins):
        mask = (indices == b) & (xs <= x_max)
        count = int(mask.sum())
        if count < min_samples:
            continue
        points.append(
            BinnedPoint(
                bin_center=float((edges[b] + edges[b + 1]) / 2.0),
                value=float(ys[mask].mean()),
                n_samples=count,
            )
        )
    return points


@dataclass(frozen=True, slots=True)
class QuantileBand:
    """One bin of a binned quantile-band curve (Figure 3's p10/p50/p90)."""

    bin_center: float
    quantiles: dict[float, float]
    n_samples: int


def binned_quantile_bands(
    x: Sequence[float],
    y: Sequence[float],
    *,
    quantiles: Sequence[float] = (10.0, 50.0, 90.0),
    n_bins: int = 12,
    min_samples: int = 1000,
    x_max_quantile: float = 0.99,
) -> list[QuantileBand]:
    """Percentile bands of ``y`` binned by ``x`` (the Figure 3 construction:
    the distribution of one metric as a function of another)."""
    xs = np.asarray(list(x), dtype=float)
    ys = np.asarray(list(y), dtype=float)
    if xs.shape != ys.shape:
        raise ValueError("x and y must align")
    if xs.size == 0:
        return []
    x_max = float(np.quantile(xs, x_max_quantile))
    x_min = float(xs.min())
    if x_max <= x_min:
        return [
            QuantileBand(
                bin_center=x_min,
                quantiles={float(q): float(np.percentile(ys, q)) for q in quantiles},
                n_samples=int(xs.size),
            )
        ]
    edges = np.linspace(x_min, x_max, n_bins + 1)
    indices = np.clip(np.digitize(xs, edges) - 1, 0, n_bins - 1)
    bands: list[QuantileBand] = []
    for b in range(n_bins):
        mask = (indices == b) & (xs <= x_max)
        count = int(mask.sum())
        if count < min_samples:
            continue
        selected = ys[mask]
        bands.append(
            QuantileBand(
                bin_center=float((edges[b] + edges[b + 1]) / 2.0),
                quantiles={float(q): float(np.percentile(selected, q)) for q in quantiles},
                n_samples=count,
            )
        )
    return bands


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient (the Fig 1 caption's 0.97/0.95/0.91)."""
    xs = np.asarray(list(x), dtype=float)
    ys = np.asarray(list(y), dtype=float)
    if xs.size < 2:
        raise ValueError("need at least two points")
    if np.allclose(xs.std(), 0.0) or np.allclose(ys.std(), 0.0):
        raise ValueError("degenerate (constant) input")
    return float(np.corrcoef(xs, ys)[0, 1])


def percentile_summary(
    values: Sequence[float], percentiles: Sequence[float] = (10, 50, 90, 99)
) -> dict[float, float]:
    """Selected percentiles of a sample."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("empty sample")
    return {float(p): float(np.percentile(array, p)) for p in percentiles}


def percentile_improvement(
    baseline: Sequence[float],
    improved: Sequence[float],
    percentiles: Sequence[float] = (50, 90, 99),
) -> dict[float, float]:
    """Relative improvement between matching percentiles of two samples.

    The Figure 12b method: "first calculate the percentiles of performance
    of each strategy and calculate the improvement between these
    percentiles (which avoids the bias of calculating improvement on each
    call)".  Returns percent improvement (positive = ``improved`` lower).
    """
    base = np.asarray(list(baseline), dtype=float)
    new = np.asarray(list(improved), dtype=float)
    if base.size == 0 or new.size == 0:
        raise ValueError("empty sample")
    result: dict[float, float] = {}
    for p in percentiles:
        b = float(np.percentile(base, p))
        a = float(np.percentile(new, p))
        result[float(p)] = 0.0 if b <= 0.0 else 100.0 * (b - a) / b
    return result
