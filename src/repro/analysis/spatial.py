"""Spatial dissection: international/domestic splits, country and AS-pair
breakdowns (Figures 4, 5, 13, 14 of the paper)."""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.analysis.pnr import pnr
from repro.analysis.thresholds import DEFAULT_THRESHOLDS, Thresholds
from repro.telephony.call import CallOutcome

__all__ = [
    "split_international",
    "by_country_pnr",
    "pair_contribution_curve",
]


def split_international(
    outcomes: Sequence[CallOutcome],
) -> tuple[list[CallOutcome], list[CallOutcome]]:
    """(international, domestic) partition of outcomes."""
    international: list[CallOutcome] = []
    domestic: list[CallOutcome] = []
    for outcome in outcomes:
        if outcome.call.international:
            international.append(outcome)
        else:
            domestic.append(outcome)
    return international, domestic


def by_country_pnr(
    outcomes: Sequence[CallOutcome],
    metric: str | None = None,
    *,
    international_only: bool = True,
    min_calls: int = 200,
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
) -> dict[str, float]:
    """PNR per country "of one side of a call" (Figures 4b and 14).

    Each call counts towards both endpoints' countries; international-only
    filtering matches the paper's Figure 14 ("one side of the
    international call in that country").
    """
    buckets: dict[str, list[CallOutcome]] = defaultdict(list)
    for outcome in outcomes:
        call = outcome.call
        if international_only and not call.international:
            continue
        buckets[call.src_country].append(outcome)
        if call.dst_country != call.src_country:
            buckets[call.dst_country].append(outcome)
    return {
        country: pnr(members, metric, thresholds)
        for country, members in buckets.items()
        if len(members) >= min_calls
    }


def pair_contribution_curve(
    outcomes: Sequence[CallOutcome],
    metric: str | None = None,
    thresholds: Thresholds = DEFAULT_THRESHOLDS,
) -> list[tuple[int, float]]:
    """Cumulative share of poor calls from the worst-n AS pairs (Figure 5).

    Pairs are ranked by their absolute contribution of poor calls; the
    curve gives (n, fraction of all poor calls covered by the top n).
    The paper's point: even the worst 1000 AS pairs cover <15%, so poor
    performance is not a few bad pockets.
    """
    poor_by_pair: dict[tuple[int, int], int] = defaultdict(int)
    total_poor = 0
    for outcome in outcomes:
        if metric is None:
            bad = thresholds.any_poor(outcome.metrics)
        else:
            bad = thresholds.is_poor(outcome.metrics, metric)
        if bad:
            poor_by_pair[outcome.call.as_pair] += 1
            total_poor += 1
    if total_poor == 0:
        return []
    ranked = sorted(poor_by_pair.values(), reverse=True)
    curve: list[tuple[int, float]] = []
    cumulative = 0
    for n, count in enumerate(ranked, start=1):
        cumulative += count
        curve.append((n, cumulative / total_poor))
    return curve
