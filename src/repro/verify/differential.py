"""Differential equivalence harness: oracle vs production ``ViaPolicy``.

:class:`OracleViaPolicy` restates Algorithm 1's control flow in the
plainest possible terms, delegating the two audited algorithms to their
oracles -- :func:`repro.verify.oracles.oracle_dynamic_top_k` for pruning
and :class:`repro.verify.oracles.OracleBandit` for selection -- while
sharing only the *input-producing* machinery (call keying, the windowed
history store, the predictor) with production.  Both policies consume an
identically seeded RNG with an identical draw order, so every assignment
must match exactly, call for call.

:func:`run_differential` replays a randomized call stream through both
side by side.  The first mismatch raises :class:`DivergenceError`
carrying full state context: the step, the call, both candidate sets,
both bandit states, and the predictions that fed them -- everything
needed to reproduce and localise the disagreement from the seed alone.

When tomography is enabled, the oracle additionally audits every
tomography-sourced prediction against the Figure-11 stitching oracle,
so a drift in :meth:`repro.core.tomography.TomographyModel.predict`
surfaces as a divergence too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.core.costs import CostModel, make_cost_model
from repro.core.history import CallHistory
from repro.core.keys import PairKeyer
from repro.core.policy import ViaConfig, ViaPolicy
from repro.core.predictor import Prediction, Predictor
from repro.core.tomography import InterRelayLookup, TomographyModel
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption
from repro.obs.metrics import MetricsRegistry
from repro.telephony.call import Call
from repro.verify.oracles import (
    OracleBandit,
    oracle_dynamic_top_k,
    oracle_stitch,
    oracle_topk_normalizer,
)

__all__ = [
    "DifferentialReport",
    "DivergenceError",
    "OracleViaPolicy",
    "random_config",
    "run_differential",
]


class DivergenceError(AssertionError):
    """Oracle and production disagreed; ``context`` localises where."""

    def __init__(self, message: str, context: dict) -> None:
        super().__init__(message)
        self.context = context


@dataclass(slots=True)
class _OracleState:
    """Per-(pair, period) oracle state: candidates, pruning, bandit."""

    options: list[RelayOption]
    topk: list[RelayOption]
    predictions: dict[RelayOption, Prediction]
    bandit: OracleBandit | None
    argmin_choice: RelayOption | None = None
    greedy_counts: dict[RelayOption, int] = field(default_factory=dict)
    greedy_sums: dict[RelayOption, float] = field(default_factory=dict)


class OracleViaPolicy:
    """Algorithm 1 restated plainly, built on the verification oracles.

    Supports the paper's core configuration space: every ``topk_mode``,
    both selectors, both UCB normalisation modes, epsilon general
    exploration, and optional tomography.  The operational extensions
    (budget gate, per-relay caps, coordinates) are out of oracle scope
    and rejected up front -- they are exercised by their own suites.
    """

    def __init__(
        self, config: ViaConfig, *, inter_relay: InterRelayLookup | None = None
    ) -> None:
        if config.budget < 1.0:
            raise ValueError("oracle scope excludes the budget gate")
        if config.per_relay_cap is not None:
            raise ValueError("oracle scope excludes per-relay load caps")
        if config.use_coordinates:
            raise ValueError("oracle scope excludes the coordinate extension")
        self.config = config
        self.name = f"oracle-via[{config.metric}]"
        self._cost: CostModel = make_cost_model(config.metric)
        self._inter_relay = inter_relay
        self._keyer = PairKeyer(config.granularity)
        self._rng = np.random.default_rng(config.seed)
        self.history = CallHistory(window_hours=config.refresh_hours)
        self._period = -1
        self._predictor: Predictor | None = None
        self._tomography: TomographyModel | None = None
        self._states: dict[Hashable, _OracleState] = {}
        self.n_refreshes = 0
        self.n_epsilon_explorations = 0

    # -- Algorithm 1, stage by stage -----------------------------------

    def assign(self, call: Call, options: list[RelayOption]) -> RelayOption:
        if not options:
            raise ValueError("assign() needs at least one option")
        period = int(call.t_hours // self.config.refresh_hours)
        if period != self._period:
            self._refresh(period)
        view = self._keyer.view(call)
        norm_options = [view.normalize(o) for o in options]
        state = self._state_for(view.pair_key, call.direct_blocked, norm_options)
        return view.denormalize(self._choose(state, norm_options))

    def observe(self, call: Call, option: RelayOption, metrics: PathMetrics) -> None:
        view = self._keyer.view(call)
        norm = view.normalize(option)
        self.history.add(view.pair_key, norm, call.t_hours, metrics)
        state = self._states.get((view.pair_key, call.direct_blocked))
        if state is None:
            return
        cost = self._cost.call_cost(metrics)
        if state.bandit is not None and norm in state.bandit.counts:
            state.bandit.update(norm, cost)
        if self.config.selector == "greedy":
            state.greedy_counts[norm] = state.greedy_counts.get(norm, 0) + 1
            state.greedy_sums[norm] = state.greedy_sums.get(norm, 0.0) + cost

    def _refresh(self, period: int) -> None:
        self._period = period
        self._states = {}
        self.n_refreshes += 1
        window = period - 1
        if window < 0:
            self._predictor = None
            self._tomography = None
            return
        tomography: TomographyModel | None = None
        if self.config.use_tomography and self._inter_relay is not None:
            tomography = TomographyModel.fit(
                (
                    ((key[0][0], key[0][1]), key[1], stat)
                    for key, stat in self.history.window_items(window)
                ),
                self._inter_relay,
            )
        self._tomography = tomography
        self._predictor = Predictor(
            self.history,
            window,
            tomography=tomography,
            min_direct_samples=self.config.min_direct_samples,
        )
        self.history.prune_before(window)

    def _state_for(
        self, pair_key: Hashable, direct_blocked: bool, norm_options: list[RelayOption]
    ) -> _OracleState:
        state_key = (pair_key, direct_blocked)
        state = self._states.get(state_key)
        if state is not None:
            return state
        predictions: dict[RelayOption, Prediction] = {}
        if self._predictor is not None:
            predictions = self._predictor.predict_all(pair_key, norm_options)  # type: ignore[arg-type]
            if self._tomography is not None:
                self._audit_stitching(pair_key, norm_options)
        topk = self._prune(predictions, norm_options)
        bandit: OracleBandit | None = None
        argmin_choice: RelayOption | None = None
        if self.config.topk_mode == "argmin":
            if predictions:
                argmin_choice = min(
                    predictions, key=lambda o: self._cost.predicted(predictions[o])
                )
        elif self.config.selector == "ucb":
            mode = self.config.ucb_mode if predictions else "classic"
            bandit = OracleBandit(
                topk,
                normalizer=oracle_topk_normalizer(topk, predictions, self._cost),
                exploration_coef=self.config.exploration_coef,
                mode=mode,
            )
        state = _OracleState(
            options=list(norm_options),
            topk=topk,
            predictions=predictions,
            bandit=bandit,
            argmin_choice=argmin_choice,
        )
        self._states[state_key] = state
        return state

    def _prune(
        self,
        predictions: dict[RelayOption, Prediction],
        norm_options: list[RelayOption],
    ) -> list[RelayOption]:
        mode = self.config.topk_mode
        if mode == "all" or len(predictions) < 2:
            return list(norm_options)
        if mode == "dynamic":
            return oracle_dynamic_top_k(
                predictions, self._cost, max_k=self.config.max_k
            )
        ranked = sorted(
            predictions, key=lambda o: self._cost.predicted(predictions[o])
        )
        if mode == "fixed":
            return ranked[: self.config.fixed_k]
        return ranked[:1]  # argmin

    def _choose(self, state: _OracleState, norm_options: list[RelayOption]) -> RelayOption:
        # The RNG draw order mirrors production exactly: one uniform for
        # the epsilon coin (only when epsilon > 0), one integer for the
        # exploration pick, then the greedy selector's own draws.
        if self.config.epsilon > 0.0 and self._rng.random() < self.config.epsilon:
            self.n_epsilon_explorations += 1
            return norm_options[int(self._rng.integers(len(norm_options)))]
        if self.config.topk_mode == "argmin":
            if state.argmin_choice is not None:
                return state.argmin_choice
            return self._fallback(state.options)
        if self.config.selector == "greedy":
            return self._choose_greedy(state)
        assert state.bandit is not None
        return state.bandit.choose()

    def _choose_greedy(self, state: _OracleState) -> RelayOption:
        candidates = state.topk
        if self._rng.random() < self.config.greedy_epsilon:
            return candidates[int(self._rng.integers(len(candidates)))]
        tried = [c for c in candidates if state.greedy_counts.get(c, 0) > 0]
        if not tried:
            return candidates[int(self._rng.integers(len(candidates)))]
        return min(tried, key=lambda c: state.greedy_sums[c] / state.greedy_counts[c])

    @staticmethod
    def _fallback(norm_options: list[RelayOption]) -> RelayOption:
        if DIRECT in norm_options:
            return DIRECT
        return norm_options[0]

    def _audit_stitching(
        self, pair_key: Hashable, norm_options: list[RelayOption]
    ) -> None:
        """Check every stitched path against the Figure-11 oracle."""
        model = self._tomography
        assert model is not None
        side_s, side_d = pair_key  # type: ignore[misc]
        for option in norm_options:
            produced = model.predict(side_s, side_d, option)
            expected = oracle_stitch(
                model._estimates, model._sems, self._inter_relay, side_s, side_d, option
            )
            if (produced is None) != (expected is None):
                raise DivergenceError(
                    "tomography stitching availability diverged from oracle",
                    {
                        "pair": repr(pair_key),
                        "option": str(option),
                        "production": repr(produced),
                        "oracle": repr(expected),
                    },
                )
            if produced is None or expected is None:
                continue
            if not (
                np.allclose(produced[0], expected[0], rtol=1e-9, atol=1e-12)
                and np.allclose(produced[1], expected[1], rtol=1e-9, atol=1e-12)
            ):
                raise DivergenceError(
                    "tomography stitching values diverged from oracle",
                    {
                        "pair": repr(pair_key),
                        "option": str(option),
                        "production_mean": produced[0].tolist(),
                        "oracle_mean": expected[0].tolist(),
                        "production_sem": produced[1].tolist(),
                        "oracle_sem": expected[1].tolist(),
                    },
                )


# ----------------------------------------------------------------------
# The randomized stream driver
# ----------------------------------------------------------------------


@dataclass(slots=True)
class DifferentialReport:
    """One differential run: what was replayed and that it agreed."""

    seed: int
    config: ViaConfig
    n_steps: int = 0
    n_assigns: int = 0
    n_observes: int = 0
    n_refreshes: int = 0
    n_epsilon: int = 0


_METRIC_CHOICES = ("rtt_ms", "loss_rate", "jitter_ms", "mos")
_TOPK_CHOICES = ("dynamic", "dynamic", "dynamic", "fixed", "argmin", "all")
_SELECTOR_CHOICES = ("ucb", "ucb", "ucb", "greedy")
_UCB_MODE_CHOICES = ("via", "via", "classic")
_EPSILON_CHOICES = (0.0, 0.03, 0.2)
_MAX_K_CHOICES = (None, 3, 6)


def random_config(rng: np.random.Generator) -> ViaConfig:
    """A random point in the oracle-supported configuration space."""
    return ViaConfig(
        metric=str(rng.choice(_METRIC_CHOICES)),
        topk_mode=str(rng.choice(_TOPK_CHOICES)),
        selector=str(rng.choice(_SELECTOR_CHOICES)),
        ucb_mode=str(rng.choice(_UCB_MODE_CHOICES)),
        epsilon=float(rng.choice(_EPSILON_CHOICES)),
        greedy_epsilon=float(rng.choice((0.05, 0.2))),
        max_k=_MAX_K_CHOICES[int(rng.integers(len(_MAX_K_CHOICES)))],
        fixed_k=int(rng.integers(1, 4)),
        min_direct_samples=int(rng.choice((1, 3))),
        refresh_hours=float(rng.choice((6.0, 24.0))),
        use_tomography=bool(rng.integers(2)),
        exploration_coef=float(rng.choice((0.01, 0.1))),
        seed=int(rng.integers(1 << 31)),
    )


def _make_inter_relay(n_relays: int) -> InterRelayLookup:
    """A deterministic backbone model: cheap, symmetric, id-derived."""

    def lookup(r1: int, r2: int) -> PathMetrics:
        lo, hi = sorted((r1, r2))
        return PathMetrics(
            rtt_ms=5.0 + 3.0 * ((lo + hi) % n_relays),
            loss_rate=0.0005 * (1 + (lo * 7 + hi) % 3),
            jitter_ms=0.5 + 0.25 * ((lo * 3 + hi) % 4),
        )

    return lookup


def _pair_options(rng: np.random.Generator, n_relays: int) -> list[RelayOption]:
    """Direct + every bounce + a couple of random transits."""
    options: list[RelayOption] = [DIRECT]
    options.extend(RelayOption.bounce(r) for r in range(n_relays))
    for _ in range(2):
        r1, r2 = rng.choice(n_relays, size=2, replace=False)
        transit = RelayOption.transit(int(r1), int(r2))
        if transit not in options:
            options.append(transit)
    return options


def run_differential(
    config: ViaConfig | None = None,
    *,
    n_steps: int = 200,
    seed: int = 0,
    n_pairs: int = 6,
    n_relays: int = 4,
    production_factory=ViaPolicy,
) -> DifferentialReport:
    """Replay one randomized call stream through oracle and production.

    Everything derives from ``seed``: the configuration (when none is
    given), the call stream, and the latent per-path performance.  Raises
    :class:`DivergenceError` on the first disagreement; otherwise returns
    the :class:`DifferentialReport`.  ``production_factory`` exists so the
    harness can prove it *detects* divergence (tests swap in a policy with
    a planted bug); it also accepts a registry policy name (e.g.
    ``"via-vector"``), resolved to that entry's concrete policy class.
    """
    if isinstance(production_factory, str):
        from repro.core.registry import REGISTRY

        entry = REGISTRY.get(production_factory)
        if entry.policy_class is None or not issubclass(entry.policy_class, ViaPolicy):
            raise ValueError(
                f"registry policy {production_factory!r} is not a ViaPolicy "
                "variant; the differential harness audits Algorithm 1 only"
            )
        production_factory = entry.policy_class
    stream_rng = np.random.default_rng(seed)
    if config is None:
        config = random_config(stream_rng)
    inter_relay = _make_inter_relay(n_relays)
    production = production_factory(
        config, inter_relay=inter_relay, registry=MetricsRegistry()
    )
    oracle = OracleViaPolicy(config, inter_relay=inter_relay)

    pairs = []
    for i in range(n_pairs):
        src_asn, dst_asn = 100 + 2 * i, 101 + 2 * i + int(stream_rng.integers(3))
        pairs.append(
            {
                "src_asn": src_asn,
                "dst_asn": dst_asn,
                "src_country": f"C{src_asn % 5}",
                "dst_country": f"C{dst_asn % 5}",
                "options": _pair_options(stream_rng, n_relays),
                "blocked": bool(stream_rng.random() < 0.15),
                # Latent mean RTT per option index, the workload's ground truth.
                "base_rtt": 40.0 + stream_rng.uniform(0.0, 160.0, size=16),
            }
        )

    report = DifferentialReport(seed=seed, config=config)
    t_hours = 0.0
    for step in range(n_steps):
        t_hours += float(stream_rng.exponential(config.refresh_hours / 40.0))
        pair = pairs[int(stream_rng.integers(n_pairs))]
        blocked = pair["blocked"] and bool(stream_rng.random() < 0.5)
        options = list(pair["options"])
        if blocked:
            options = [o for o in options if o.is_relayed]
        call = Call(
            call_id=step + 1,
            t_hours=t_hours,
            src_asn=pair["src_asn"],
            dst_asn=pair["dst_asn"],
            src_country=pair["src_country"],
            dst_country=pair["dst_country"],
            src_user=pair["src_asn"] * 10,
            dst_user=pair["dst_asn"] * 10,
            direct_blocked=blocked,
        )
        produced = production.assign(call, options)
        expected = oracle.assign(call, options)
        report.n_assigns += 1
        if produced != expected:
            raise DivergenceError(
                f"assignment diverged at step {step}: "
                f"production={produced} oracle={expected}",
                _divergence_context(
                    step, call, config, seed, produced, expected, production, oracle
                ),
            )
        idx = options.index(produced)
        rtt = float(pair["base_rtt"][idx] * stream_rng.uniform(0.85, 1.15))
        metrics = PathMetrics(
            rtt_ms=rtt,
            loss_rate=float(stream_rng.uniform(0.0, 0.03)),
            jitter_ms=float(stream_rng.uniform(0.5, 15.0)),
        )
        production.observe(call, produced, metrics)
        oracle.observe(call, produced, metrics)
        report.n_observes += 1
        report.n_steps += 1
    if production.n_refreshes != oracle.n_refreshes:
        raise DivergenceError(
            f"refresh counts diverged: production={production.n_refreshes} "
            f"oracle={oracle.n_refreshes}",
            {"seed": seed, "config": repr(config)},
        )
    if production.n_epsilon_explorations != oracle.n_epsilon_explorations:
        raise DivergenceError(
            "epsilon exploration counts diverged: "
            f"production={production.n_epsilon_explorations} "
            f"oracle={oracle.n_epsilon_explorations}",
            {"seed": seed, "config": repr(config)},
        )
    report.n_refreshes = production.n_refreshes
    report.n_epsilon = production.n_epsilon_explorations
    return report


def _divergence_context(
    step: int,
    call: Call,
    config: ViaConfig,
    seed: int,
    produced: RelayOption,
    expected: RelayOption,
    production: ViaPolicy,
    oracle: OracleViaPolicy,
) -> dict:
    """Full state context around a divergence, JSON-representable."""
    view = production._keyer.view(call)
    state_key = (view.pair_key, call.direct_blocked)
    prod_state = production._pair_state.get(state_key)
    oracle_state = oracle._states.get(state_key)
    context = {
        "seed": seed,
        "step": step,
        "config": repr(config),
        "call": call.to_dict(),
        "pair_key": repr(view.pair_key),
        "production_choice": str(produced),
        "oracle_choice": str(expected),
    }
    if prod_state is not None:
        context["production_topk"] = [str(o) for o in prod_state.topk]
        if prod_state.bandit is not None:
            context["production_bandit"] = prod_state.bandit.snapshot()
    if oracle_state is not None:
        context["oracle_topk"] = [str(o) for o in oracle_state.topk]
        if oracle_state.bandit is not None:
            context["oracle_bandit"] = oracle_state.bandit.snapshot()
        context["predictions"] = {
            str(o): {
                "mean": p.mean.tolist(),
                "sem": p.sem.tolist(),
                "n": p.n,
                "source": p.source,
            }
            for o, p in oracle_state.predictions.items()
        }
    return context
