"""Reference implementations of the paper's algorithms, for conformance.

These are the *specs*, written to be obviously correct rather than fast:
plain loops, explicit quantifiers, no incremental state, no numpy beyond
what the inputs force.  The production implementations in
:mod:`repro.core.topk`, :mod:`repro.core.bandit` and
:mod:`repro.core.tomography` are checked against them by the unit tests
in ``tests/test_verify.py`` and by the differential harness
(:mod:`repro.verify.differential`).

A mismatch between an oracle and production is *always* a bug in one of
the two -- the oracles deliberately restate the paper's definitions
(§4.4-§4.5, Figure 11), so they should only ever change when the paper
reading changes.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Hashable

import numpy as np

from repro.core.predictor import Prediction
from repro.netmodel.metrics import PathMetrics, linear_to_loss, loss_to_linear
from repro.netmodel.options import OptionKind, RelayOption

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.costs import CostModel

__all__ = [
    "OracleBandit",
    "oracle_dynamic_top_k",
    "oracle_stitch",
    "oracle_topk_normalizer",
]


def oracle_dynamic_top_k(
    predictions: dict[RelayOption, Prediction],
    cost_model: "CostModel",
    *,
    max_k: int | None = None,
) -> list[RelayOption]:
    """Algorithm 2, as a literal restatement of its definition.

    The top-k set is the *minimal* prefix S of the options ranked by
    ascending lower confidence bound such that every option outside S
    has a lower bound strictly above the maximum upper bound inside S
    -- i.e. everything excluded is, with 95% confidence, worse than
    everything kept.  The kept set is returned best-predicted-first and
    optionally capped at ``max_k``.

    Unlike the production single-pass walk in
    :func:`repro.core.topk.dynamic_top_k_cost`, this checks the defining
    property with explicit quantifiers over every candidate prefix size.
    """
    if not predictions:
        return []
    ranked = sorted(
        predictions.items(), key=lambda item: cost_model.predicted_lower(item[1])
    )
    n = len(ranked)
    k = n
    for size in range(1, n + 1):
        max_upper = max(
            cost_model.predicted_upper(pred) for _opt, pred in ranked[:size]
        )
        if all(
            cost_model.predicted_lower(pred) > max_upper
            for _opt, pred in ranked[size:]
        ):
            k = size
            break
    kept = [option for option, _pred in ranked[:k]]
    kept.sort(key=lambda option: cost_model.predicted(predictions[option]))
    if max_k is not None and len(kept) > max_k:
        kept = kept[:max_k]
    return kept


def oracle_topk_normalizer(
    arms: list[RelayOption],
    predictions: dict[RelayOption, Prediction],
    cost_model: "CostModel",
) -> float:
    """Algorithm 3's reward normaliser: mean upper bound of the top-k.

    Costs are divided by the average pessimistic (95% upper) predicted
    cost of the candidate arms, so one outlier observation cannot
    compress the common case into indistinguishability (§4.5).  Arms
    without a prediction contribute nothing; with no predicted arm at
    all the normaliser is 1.0 (raw costs).
    """
    uppers = [
        cost_model.predicted_upper(predictions[arm])
        for arm in arms
        if arm in predictions
    ]
    if not uppers:
        return 1.0
    return max(1e-9, sum(uppers) / len(uppers))


class OracleBandit:
    """Algorithm 3 (modified UCB1), recomputed from scratch every choice.

    Matches :class:`repro.core.bandit.UCB1Explorer` decision-for-decision:
    untried arms are played in the given (best-predicted-first) order,
    then the arm minimising ``mean_cost / w - sqrt(coef * log T / n)`` is
    selected, ties broken by arm order.  ``mode='via'`` uses the fixed
    top-k-mean normaliser; ``mode='classic'`` normalises by the observed
    cost range (the Figure 15 ablation).
    """

    def __init__(
        self,
        arms: list[RelayOption],
        *,
        normalizer: float,
        exploration_coef: float = 0.1,
        mode: str = "via",
    ) -> None:
        if not arms:
            raise ValueError("bandit needs at least one arm")
        if normalizer <= 0.0:
            raise ValueError(f"normalizer must be positive: {normalizer}")
        if mode not in ("via", "classic"):
            raise ValueError(f"mode must be 'via' or 'classic': {mode!r}")
        self.arms = list(arms)
        self.mode = mode
        self.exploration_coef = exploration_coef
        self.normalizer = normalizer
        self.counts: dict[RelayOption, int] = {arm: 0 for arm in arms}
        self.cost_sums: dict[RelayOption, float] = {arm: 0.0 for arm in arms}
        self.total_plays = 0
        self.max_seen_cost = 0.0

    def choose(self) -> RelayOption:
        for arm in self.arms:
            if self.counts[arm] == 0:
                return arm
        if self.mode == "via":
            w = self.normalizer
        else:
            w = max(self.max_seen_cost, 1e-9)
        log_t = math.log(self.total_plays + 1)
        best = self.arms[0]
        best_index = math.inf
        for arm in self.arms:
            n = self.counts[arm]
            index = (self.cost_sums[arm] / n) / w - math.sqrt(
                self.exploration_coef * log_t / n
            )
            if index < best_index:
                best_index = index
                best = arm
        return best

    def update(self, arm: RelayOption, cost: float) -> None:
        if arm not in self.counts:
            raise KeyError(f"unknown arm {arm}")
        self.counts[arm] += 1
        self.cost_sums[arm] += cost
        self.total_plays += 1
        self.max_seen_cost = max(self.max_seen_cost, cost)

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Per-arm diagnostic view, shape-compatible with the production
        :meth:`repro.core.bandit.UCB1Explorer.snapshot`."""
        return {
            str(arm): {
                "count": float(self.counts[arm]),
                "mean_cost": (
                    self.cost_sums[arm] / self.counts[arm]
                    if self.counts[arm]
                    else float("nan")
                ),
            }
            for arm in self.arms
        }


def oracle_stitch(
    estimates: dict[tuple[Hashable, int], np.ndarray],
    sems: dict[tuple[Hashable, int], np.ndarray],
    inter_relay: Callable[[int, int], PathMetrics],
    side_s: Hashable,
    side_d: Hashable,
    option: RelayOption,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Figure-11 path stitching, restated with explicit per-metric sums.

    Given per-(side, relay) segment estimates in the linearised metric
    space -- (rtt_ms, -log(1-loss), jitter_ms) -- stitch a relay path:

    * bounce via ``r``:       ``caller<->r  +  callee<->r``
    * transit ``r1 -> r2``:   ``caller<->r1 + inter(r1, r2) + callee<->r2``

    Loss is summed in the linear domain and converted back; the standard
    error combines the two independent segment errors in quadrature.
    Returns ``None`` for direct paths and when either segment is
    unestimated, exactly like
    :meth:`repro.core.tomography.TomographyModel.predict`.
    """
    if option.kind is OptionKind.DIRECT:
        return None
    if option.kind is OptionKind.BOUNCE:
        relay = option.ingress
        assert relay is not None
        seg_s, sem_s = estimates.get((side_s, relay)), sems.get((side_s, relay))
        seg_d, sem_d = estimates.get((side_d, relay)), sems.get((side_d, relay))
        inter_rtt, inter_linear_loss, inter_jitter = 0.0, 0.0, 0.0
    else:
        assert option.ingress is not None and option.egress is not None
        seg_s = estimates.get((side_s, option.ingress))
        sem_s = sems.get((side_s, option.ingress))
        seg_d = estimates.get((side_d, option.egress))
        sem_d = sems.get((side_d, option.egress))
        inter = inter_relay(option.ingress, option.egress)
        inter_rtt = inter.rtt_ms
        inter_linear_loss = loss_to_linear(inter.loss_rate)
        inter_jitter = inter.jitter_ms
    if seg_s is None or seg_d is None:
        return None
    assert sem_s is not None and sem_d is not None
    rtt = float(seg_s[0]) + float(seg_d[0]) + inter_rtt
    linear_loss = float(seg_s[1]) + float(seg_d[1]) + inter_linear_loss
    jitter = float(seg_s[2]) + float(seg_d[2]) + inter_jitter
    mean = np.array([rtt, linear_to_loss(linear_loss), jitter])
    sem = np.array(
        [
            math.sqrt(float(sem_s[m]) ** 2 + float(sem_d[m]) ** 2)
            for m in range(3)
        ]
    )
    return mean, sem
