"""The time-boxed verification run behind ``repro verify`` / ``make test-verify``.

One :func:`run_verify` call executes the three legs of the conformance
plane under a :class:`VerifyBudget`:

1. **differential** -- N randomized call streams through oracle and
   production policies side by side (one stream per seed offset);
2. **crashpoints** -- the every-byte WAL truncation + sampled-corruption
   sweep;
3. **statemachine** -- the hypothesis controller-lifecycle fuzz (skipped
   with a note when hypothesis is not installed).

Runs are observable (``via_verify_*`` metrics on the shared registry)
and reproducible: everything derives from ``budget.seed``, and any
failure writes a JSON artifact under ``.verify-failures/`` carrying the
seed, the budget, and each failure's full context.  An optional
``time_budget_s`` stops cleanly between work units -- a truncated run
reports what it skipped rather than silently passing.
"""

from __future__ import annotations

import dataclasses
import json
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.verify.crashpoints import crash_point_sweep
from repro.verify.differential import DivergenceError, run_differential

__all__ = ["VerifyBudget", "VerifyReport", "run_verify"]


@dataclass(frozen=True, slots=True)
class VerifyBudget:
    """How much of each leg to run; everything derives from ``seed``."""

    #: Independent differential streams (stream i uses ``seed + i``).
    differential_streams: int = 5
    #: Policy steps per differential stream.
    differential_steps: int = 200
    #: Measurement+request rounds in the recorded crash-sweep workload.
    crash_rounds: int = 25
    #: Single-byte corruption trials in the crash sweep.
    corrupt_samples: int = 64
    #: hypothesis examples (distinct rule sequences) for the state machine.
    statemachine_examples: int = 12
    #: Max rules per state-machine example.
    statemachine_steps: int = 30
    #: Wall-clock cap in seconds; None = run everything.
    time_budget_s: float | None = None
    #: Master seed; a failure artifact's seed reproduces the failure.
    seed: int = 0

    @classmethod
    def small(cls, seed: int = 0) -> "VerifyBudget":
        """A quick gate (CI inner loop): a couple of minutes of checking."""
        return cls(
            differential_streams=3,
            differential_steps=200,
            crash_rounds=8,
            corrupt_samples=24,
            statemachine_examples=5,
            statemachine_steps=20,
            seed=seed,
        )

    @classmethod
    def full(cls, seed: int = 0) -> "VerifyBudget":
        """The acceptance-sized run: a >= 50-record crash sweep and more
        differential streams."""
        return cls(
            differential_streams=8,
            differential_steps=250,
            crash_rounds=25,  # 4 hellos + 50 records, swept at every byte
            corrupt_samples=128,
            statemachine_examples=15,
            statemachine_steps=40,
            seed=seed,
        )


@dataclass(slots=True)
class VerifyReport:
    """What one verification run checked and what it found."""

    seed: int
    budget: VerifyBudget
    n_checks: int = 0
    failures: list[dict] = field(default_factory=list)
    #: Per-leg human-readable outcome lines, in execution order.
    legs: list[str] = field(default_factory=list)
    #: Work units skipped because the time budget ran out.
    truncated: bool = False
    duration_s: float = 0.0
    #: Where the failure artifact was written, when there were failures.
    artifact_path: Path | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [f"verify seed={self.seed}: {self.n_checks} checks in {self.duration_s:.1f}s"]
        lines += [f"  {leg}" for leg in self.legs]
        if self.truncated:
            lines.append("  TIME BUDGET EXHAUSTED: later legs were skipped")
        if self.ok:
            lines.append("  PASS")
        else:
            lines.append(f"  FAIL: {len(self.failures)} failures")
            if self.artifact_path is not None:
                lines.append(f"  artifact: {self.artifact_path}")
                lines.append(f"  reproduce with: repro verify --seed {self.seed}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": dataclasses.asdict(self.budget),
            "n_checks": self.n_checks,
            "failures": self.failures,
            "legs": self.legs,
            "truncated": self.truncated,
            "duration_s": self.duration_s,
        }


def run_verify(
    budget: VerifyBudget | None = None,
    *,
    workdir: str | Path | None = None,
    registry: MetricsRegistry | None = None,
    artifacts_dir: str | Path = ".verify-failures",
) -> VerifyReport:
    """Run the three verification legs under ``budget``; never raises on a
    conformance failure -- failures land in the report and its artifact."""
    budget = budget or VerifyBudget()
    registry = registry if registry is not None else REGISTRY
    started = time.monotonic()
    deadline = None if budget.time_budget_s is None else started + budget.time_budget_s
    report = VerifyReport(seed=budget.seed, budget=budget)

    obs_checks = registry.counter(
        "via_verify_checks_total",
        "Verification checks executed, by leg.",
        ("leg",),
    )
    obs_failures = registry.counter(
        "via_verify_failures_total",
        "Verification failures found, by leg.",
        ("leg",),
    )
    registry.counter("via_verify_runs_total", "Verification runs started.").inc()

    own_workdir = workdir is None
    workdir = Path(tempfile.mkdtemp(prefix="repro-verify-")) if own_workdir else Path(workdir)

    def out_of_time() -> bool:
        if deadline is not None and time.monotonic() > deadline:
            report.truncated = True
            return True
        return False

    try:
        # Leg 1: differential oracle-vs-production streams.  Every stream
        # proves two candidates against the algorithm oracle: the scalar
        # ViaPolicy and the vectorised hot path routed through batches of
        # one -- the scalar-oracle equivalence guarantee, exercised end to
        # end (docs/performance.md).  Candidates are registry policy names
        # so the harness audits exactly what the registry hands out.
        candidates = (("scalar", None), ("vector", "via-vector"))
        n_steps = 0
        n_streams = 0
        leg_failures = 0
        for i in range(budget.differential_streams):
            if out_of_time():
                break
            stream_seed = budget.seed + i
            n_streams += 1
            for label, factory in candidates:
                kwargs = {} if factory is None else {"production_factory": factory}
                try:
                    stream = run_differential(
                        n_steps=budget.differential_steps, seed=stream_seed, **kwargs
                    )
                    n_steps += stream.n_steps
                except DivergenceError as exc:
                    leg_failures += 1
                    report.failures.append(
                        {"leg": "differential", "candidate": label,
                         "seed": stream_seed, "error": str(exc),
                         "context": exc.context}
                    )
                except Exception as exc:  # harness crash: also a finding
                    leg_failures += 1
                    report.failures.append(
                        {"leg": "differential", "candidate": label,
                         "seed": stream_seed,
                         "error": f"harness raised: {exc!r}"}
                    )
                report.n_checks += 1
                obs_checks.labels(leg="differential").inc()
        if leg_failures:
            obs_failures.labels(leg="differential").inc(leg_failures)
        report.legs.append(
            f"differential: {n_streams} streams x {len(candidates)} candidates "
            f"(scalar, vector), {n_steps} steps, {leg_failures} divergences"
        )

        # Leg 2: the crash-point sweep.
        if not out_of_time():
            try:
                sweep = crash_point_sweep(
                    workdir / "crash",
                    n_rounds=budget.crash_rounds,
                    seed=budget.seed + 1000,
                    corrupt_samples=budget.corrupt_samples,
                )
                report.n_checks += sweep.n_truncations + sweep.n_corruptions
                obs_checks.labels(leg="crashpoints").inc(
                    sweep.n_truncations + sweep.n_corruptions
                )
                if sweep.failures:
                    obs_failures.labels(leg="crashpoints").inc(len(sweep.failures))
                    report.failures.extend(
                        {"leg": "crashpoints", "seed": sweep.seed, **f}
                        for f in sweep.failures
                    )
                report.legs.append(sweep.summary())
            except Exception as exc:
                obs_failures.labels(leg="crashpoints").inc()
                report.failures.append(
                    {"leg": "crashpoints", "seed": budget.seed + 1000,
                     "error": f"harness raised: {exc!r}"}
                )
                report.legs.append("crashpoints: harness crashed")

        # Leg 3: the hypothesis lifecycle state machine.
        if not out_of_time():
            report.legs.append(
                _run_statemachine(budget, workdir, report, obs_checks, obs_failures)
            )
    finally:
        if own_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
        report.duration_s = time.monotonic() - started
        registry.gauge(
            "via_verify_last_duration_seconds",
            "Wall time of the most recent verification run.",
        ).set(report.duration_s)

    if report.failures:
        report.artifact_path = _write_artifact(artifacts_dir, report)
    return report


def _run_statemachine(budget, workdir, report, obs_checks, obs_failures) -> str:
    try:
        from hypothesis import HealthCheck, settings
        from hypothesis.stateful import run_state_machine_as_test
    except ImportError:  # pragma: no cover - environment without hypothesis
        return "statemachine: SKIPPED (hypothesis not installed)"
    from repro.verify.statemachine import build_controller_machine

    machine = build_controller_machine(workdir / "sm")
    report.n_checks += 1
    obs_checks.labels(leg="statemachine").inc()
    try:
        run_state_machine_as_test(
            machine,
            settings=settings(
                max_examples=budget.statemachine_examples,
                stateful_step_count=budget.statemachine_steps,
                deadline=None,
                database=None,
                print_blob=True,
                suppress_health_check=(HealthCheck.too_slow,),
            ),
        )
    except Exception as exc:
        obs_failures.labels(leg="statemachine").inc()
        report.failures.append(
            {"leg": "statemachine", "seed": budget.seed,
             "error": f"{type(exc).__name__}: {exc}"}
        )
        return "statemachine: FAILED (falsifying example above)"
    return (
        f"statemachine: {budget.statemachine_examples} lifecycle examples "
        f"x <= {budget.statemachine_steps} rules, ok"
    )


def _write_artifact(artifacts_dir: str | Path, report: VerifyReport) -> Path:
    directory = Path(artifacts_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"verify-seed{report.seed}-{int(time.time())}.json"
    path.write_text(
        json.dumps(report.to_dict(), indent=2, default=repr), encoding="utf-8"
    )
    return path
