"""Crash-point injection: the WAL must survive a crash at *every* byte.

:func:`record_workload` drives a deterministic controller workload into a
durable store and keeps the resulting write-ahead-log segment as bytes
plus its exact frame boundaries.  :func:`crash_point_sweep` then plays
the adversary: it truncates that segment at **every byte offset** (and
flips bytes at sampled offsets) and asserts, for each damaged log, that

* :func:`repro.store.recovery.recover` never raises,
* recovery salvages *exactly* the records whose frames were fully
  written before the "crash" -- nothing unlogged is ever resurrected,
  nothing fully logged is ever lost, and
* a controller recovered from any truncation prefix is state-identical
  to a reference controller that was fed those same records directly.

The salvage check runs at every offset against a cheap record-collecting
target; the (expensive) full-controller equivalence check runs once per
frame boundary.  Together they imply full equivalence at every offset,
because the recovered state is a deterministic function of the salvaged
record sequence.

Failures are collected, not raised, so the runner can write a
seed-reproducible artifact before the process exits.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.policy import ViaConfig
from repro.deployment.controller import ViaController
from repro.deployment.protocol import MeasurementMessage, RequestMessage, encode_option
from repro.netmodel.options import RelayOption
from repro.store.facade import Store
from repro.store.recovery import recover
from repro.store.wal import SEGMENT_MAGIC, _HEADER, segment_paths

__all__ = [
    "CrashSweepReport",
    "RecordedLog",
    "controller_fingerprint",
    "crash_point_sweep",
    "record_workload",
]

#: The deterministic recipe the recorded workload's controller uses; high
#: epsilon keeps the policy RNG hot so recovery must replay requests too.
WORKLOAD_CONFIG = ViaConfig(metric="rtt_ms", epsilon=0.25, min_direct_samples=1, seed=42)

_SITES = {0: "US", 1: "GB", 2: "IN", 3: "SG"}
_OPTIONS = [RelayOption.bounce(1), RelayOption.bounce(2), RelayOption.transit(1, 2)]


@dataclass(slots=True)
class RecordedLog:
    """One recorded WAL segment: its bytes, records, and frame layout."""

    #: Raw bytes of the (single) segment file, magic prefix included.
    data: bytes
    #: Every record in append order, as the damage-tolerant reader sees it.
    records: list[dict]
    #: ``boundaries[k]`` is the byte offset at which exactly the first
    #: ``k`` records are fully framed; ``boundaries[0]`` is the magic size.
    boundaries: list[int]

    @property
    def n_records(self) -> int:
        return len(self.records)

    def expected_prefix(self, offset: int) -> int:
        """How many records a crash at byte ``offset`` must salvage."""
        if offset < self.boundaries[0]:
            return 0  # the magic itself is damaged: nothing is trustable
        k = 0
        for i, boundary in enumerate(self.boundaries):
            if boundary <= offset:
                k = i
        return k


def _make_controller(store=None) -> ViaController:
    return ViaController(WORKLOAD_CONFIG, store=store)


def record_workload(root: str | Path, *, n_rounds: int = 25, seed: int = 7) -> RecordedLog:
    """Drive a deterministic workload into a store and capture its WAL.

    The workload mirrors the live wire path: hellos for every site, then
    ``n_rounds`` interleaved measurement + request pairs, then a crash
    (no snapshot, no clean stop).  Produces ``len(sites) + 2 * n_rounds``
    records in one segment.
    """
    root = Path(root)
    if root.exists():
        shutil.rmtree(root)
    store = Store(root)
    controller = _make_controller(store)
    rng = np.random.default_rng(seed)
    for cid, site in _SITES.items():
        controller._count_message("hello")
        controller._on_hello(cid, site)
    encoded = [encode_option(o) for o in _OPTIONS]
    for i in range(n_rounds):
        src, dst = int(rng.integers(0, 4)), int(rng.integers(0, 4))
        if src == dst:
            dst = (dst + 1) % 4
        t_hours = 0.1 + i * 0.02
        option = _OPTIONS[int(rng.integers(0, len(_OPTIONS)))]
        controller._count_message("measurement")
        controller._on_measurement(
            MeasurementMessage(
                src_id=src,
                dst_id=dst,
                t_hours=t_hours,
                option=encode_option(option),
                rtt_ms=float(80 + rng.integers(0, 100)),
                loss_rate=float(rng.uniform(0, 0.05)),
                jitter_ms=float(rng.uniform(0, 20)),
            )
        )
        controller._count_message("request")
        controller._on_request(
            RequestMessage(src_id=src, dst_id=dst, t_hours=t_hours, options=list(encoded))
        )
    store.close()
    segments = segment_paths(root / "wal")
    if len(segments) != 1:  # pragma: no cover - guards a config regression
        raise RuntimeError(f"expected one WAL segment, found {len(segments)}")
    data = segments[0].read_bytes()
    records, boundaries = _parse(data)
    return RecordedLog(data=data, records=records, boundaries=boundaries)


def _parse(data: bytes) -> tuple[list[dict], list[int]]:
    """Frame layout of an undamaged segment: (records, prefix boundaries)."""
    assert data.startswith(SEGMENT_MAGIC)
    records: list[dict] = []
    boundaries = [len(SEGMENT_MAGIC)]
    offset = len(SEGMENT_MAGIC)
    while offset < len(data):
        length, _crc = _HEADER.unpack_from(data, offset)
        payload = data[offset + _HEADER.size : offset + _HEADER.size + length]
        records.append(json.loads(payload))
        offset += _HEADER.size + length
        boundaries.append(offset)
    return records, boundaries


class _RecordCollector:
    """A minimal recovery target: just collects what recovery replays."""

    def __init__(self) -> None:
        self.records: list[dict] = []
        self.snapshot_payload: dict | None = None

    def restore_dict(self, payload: dict) -> None:
        self.snapshot_payload = payload

    def apply_record(self, record: dict) -> None:
        self.records.append(record)


@dataclass(slots=True)
class CrashSweepReport:
    """Outcome of one full crash-point sweep over a recorded log."""

    seed: int
    n_records: int = 0
    n_bytes: int = 0
    n_truncations: int = 0
    n_boundary_equivalence_checks: int = 0
    n_corruptions: int = 0
    failures: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return (
            f"crash sweep: {self.n_truncations} truncation offsets over "
            f"{self.n_records} records ({self.n_bytes} bytes), "
            f"{self.n_boundary_equivalence_checks} boundary equivalence checks, "
            f"{self.n_corruptions} corruption trials -- {verdict}"
        )


def controller_fingerprint(controller: ViaController) -> str:
    """Canonical JSON of everything the equivalence contract covers.

    Shared by the crash sweep, the lifecycle state machine, and the soak
    harness: two controllers with equal fingerprints have equal learned
    state (policy history, bandit counts, RNG position), site labels,
    and message counters.
    """
    return json.dumps(
        {
            "policy": controller.policy.state_dict(),
            "site_labels": {str(k): v for k, v in controller.site_labels.items()},
            "n_measurements": controller.n_measurements,
            "n_requests": controller.n_requests,
        },
        sort_keys=True,
    )


#: Pre-PR-10 private name, kept for in-repo callers.
_controller_fingerprint = controller_fingerprint


def crash_point_sweep(
    workdir: str | Path,
    *,
    n_rounds: int = 25,
    seed: int = 7,
    corrupt_samples: int = 64,
    recorded: RecordedLog | None = None,
) -> CrashSweepReport:
    """Truncate a recorded WAL at every byte; corrupt it at sampled bytes.

    Everything is derived from ``seed``: the recorded workload and the
    corruption offsets.  Returns a report whose ``failures`` list is empty
    on success; each failure dict carries the offset and what went wrong,
    enough to replay the exact case.
    """
    workdir = Path(workdir)
    if recorded is None:
        recorded = record_workload(workdir / "recorded", n_rounds=n_rounds, seed=seed)
    report = CrashSweepReport(
        seed=seed, n_records=recorded.n_records, n_bytes=len(recorded.data)
    )

    # Reference fingerprints: one fresh controller fed records[0:k] for
    # every k, built incrementally (recovery replays the same records
    # through the same handlers, so state must match fingerprint-for-
    # fingerprint).
    reference = _make_controller()
    fingerprints = [_controller_fingerprint(reference)]
    for record in recorded.records:
        reference.apply_record(record)
        fingerprints.append(_controller_fingerprint(reference))

    sweep_root = workdir / "sweep"
    if sweep_root.exists():
        shutil.rmtree(sweep_root)
    (sweep_root / "wal").mkdir(parents=True)
    segment = sweep_root / "wal" / "wal-00000001.seg"

    def recover_collected(tag: str, offset: int) -> _RecordCollector | None:
        """Run recovery against the damaged segment; None on failure."""
        store = Store(sweep_root)
        collector = _RecordCollector()
        try:
            recovery = recover(store, collector)
        except Exception as exc:  # the one thing recover() must never do
            report.failures.append(
                {"check": tag, "offset": offset, "error": f"recover() raised: {exc!r}"}
            )
            return None
        finally:
            store.close()
        if recovery.n_replayed != len(collector.records):  # pragma: no cover
            report.failures.append(
                {"check": tag, "offset": offset, "error": "replay count disagrees"}
            )
            return None
        return collector

    # Leg 1: every truncation offset, 0 .. len(data) inclusive.
    for offset in range(len(recorded.data) + 1):
        segment.write_bytes(recorded.data[:offset])
        collector = recover_collected("truncation", offset)
        report.n_truncations += 1
        if collector is None:
            continue
        expected_k = recorded.expected_prefix(offset)
        if collector.records != recorded.records[:expected_k]:
            report.failures.append(
                {
                    "check": "truncation",
                    "offset": offset,
                    "error": (
                        f"salvaged {len(collector.records)} records, expected the "
                        f"first {expected_k} exactly"
                    ),
                }
            )
            continue
        if offset in recorded.boundaries:
            # Frame boundary: run the expensive full-controller check.
            store = Store(sweep_root)
            target = _make_controller()
            try:
                recover(store, target)
            except Exception as exc:
                report.failures.append(
                    {
                        "check": "boundary-equivalence",
                        "offset": offset,
                        "error": f"recover() raised: {exc!r}",
                    }
                )
                continue
            finally:
                store.close()
            report.n_boundary_equivalence_checks += 1
            if _controller_fingerprint(target) != fingerprints[expected_k]:
                report.failures.append(
                    {
                        "check": "boundary-equivalence",
                        "offset": offset,
                        "error": (
                            f"recovered state differs from the reference after "
                            f"{expected_k} records"
                        ),
                    }
                )

    # Leg 2: single-byte corruption at sampled offsets (the full log is
    # present but one byte lies).  Salvage may legitimately drop or stop
    # early, but must never raise and never invent records.
    rng = np.random.default_rng(seed)
    known = {json.dumps(r, sort_keys=True) for r in recorded.records}
    offsets = rng.choice(len(recorded.data), size=min(corrupt_samples, len(recorded.data)), replace=False)
    for offset in sorted(int(o) for o in offsets):
        damaged = bytearray(recorded.data)
        damaged[offset] ^= 0xFF
        segment.write_bytes(bytes(damaged))
        collector = recover_collected("corruption", offset)
        report.n_corruptions += 1
        if collector is None:
            continue
        seqs = [r.get("seq") for r in collector.records]
        if seqs != sorted(set(seqs)):
            report.failures.append(
                {
                    "check": "corruption",
                    "offset": offset,
                    "error": "salvaged seqs are not strictly increasing",
                }
            )
        invented = [
            r for r in collector.records if json.dumps(r, sort_keys=True) not in known
        ]
        if invented:
            report.failures.append(
                {
                    "check": "corruption",
                    "offset": offset,
                    "error": f"salvage invented {len(invented)} records never logged",
                }
            )
    return report
