"""Conformance verification plane: oracles, fuzzing, differential testing.

The repo's headline guarantees are *equivalence claims* -- the pruned and
bandit-driven fast paths must match Algorithms 2/3 of the paper, a
recovered controller must match its uninterrupted twin, path-stitching
must match Figure 11.  This package turns those claims into automated,
seed-reproducible checks:

* :mod:`repro.verify.oracles` -- straightforward, obviously-correct
  reference implementations of dynamic top-k pruning (Algorithm 2),
  modified UCB1 (Algorithm 3, including the top-k-mean normalisation),
  and Figure-11 path stitching;
* :mod:`repro.verify.differential` -- replays randomized call streams
  through an oracle policy and the production
  :class:`~repro.core.policy.ViaPolicy` side by side, reporting the
  first divergence with full state context;
* :mod:`repro.verify.crashpoints` -- truncates or corrupts a recorded
  write-ahead log at every byte boundary and asserts
  :func:`repro.store.recovery.recover` never raises and never
  resurrects unlogged state;
* :mod:`repro.verify.statemachine` -- a hypothesis rule-based state
  machine over the full controller lifecycle (hello / measurement /
  request / snapshot / crash / recover / compact / outage) whose
  invariants are the existing equivalence contracts;
* :mod:`repro.verify.runner` -- the time-boxed fuzz budget behind
  ``repro verify`` and ``make test-verify``, with failure artifacts
  under ``.verify-failures/`` and ``via_verify_*`` metrics.
"""

from repro.verify.crashpoints import (
    CrashSweepReport,
    RecordedLog,
    controller_fingerprint,
    crash_point_sweep,
    record_workload,
)
from repro.verify.differential import (
    DifferentialReport,
    DivergenceError,
    OracleViaPolicy,
    random_config,
    run_differential,
)
from repro.verify.oracles import (
    OracleBandit,
    oracle_dynamic_top_k,
    oracle_stitch,
    oracle_topk_normalizer,
)
from repro.verify.runner import VerifyBudget, VerifyReport, run_verify

__all__ = [
    "CrashSweepReport",
    "DifferentialReport",
    "DivergenceError",
    "OracleBandit",
    "OracleViaPolicy",
    "RecordedLog",
    "VerifyBudget",
    "VerifyReport",
    "controller_fingerprint",
    "crash_point_sweep",
    "oracle_dynamic_top_k",
    "oracle_stitch",
    "oracle_topk_normalizer",
    "random_config",
    "record_workload",
    "run_verify",
]
