"""Stateful lifecycle fuzzing: a durable controller vs its storeless twin.

:func:`build_controller_machine` returns a hypothesis
``RuleBasedStateMachine`` whose rules are the controller's whole
lifecycle -- hello, measurement, request, snapshot, crash + recover,
compact, relay outages -- applied in lockstep to two controllers: one
backed by a durable :class:`~repro.store.Store`, one with no store at
all.  The invariants are the existing equivalence contracts:

* every assignment reply must be identical between the two (the store is
  an implementation detail, never a behaviour change);
* after a crash (the WAL file handle is dropped mid-stream, a fresh
  controller is rebuilt via :func:`repro.store.recovery.recover`), the
  recovered controller must be state-identical to the twin that never
  crashed -- history, bandit counts, RNG position, counters, labels;
* snapshots and compaction may reshape the disk layout at any point in
  the interleaving without affecting any of the above.

Relay outage state is deliberately *not* durable: which relays an
operator marked down is runtime configuration, not learned state, so the
machine reapplies it after recovery exactly as an operator (or the fault
plan) would.  The policy's down-relay rerouting consumes no RNG, so
learned state stays equal either way.

hypothesis is imported lazily inside the factory: the verify plane is
importable (and the rest of its legs usable) on deployments without it.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from repro.core.policy import ViaConfig
from repro.deployment.controller import ViaController
from repro.deployment.protocol import MeasurementMessage, RequestMessage, encode_option
from repro.netmodel.options import RelayOption
from repro.store.facade import Store
from repro.store.recovery import recover
from repro.verify.crashpoints import _controller_fingerprint

__all__ = ["MACHINE_CONFIG", "build_controller_machine"]

#: Tight refresh period + hot epsilon: runs cross predictor refreshes and
#: draw from the RNG constantly, so recovery has real state to get wrong.
MACHINE_CONFIG = ViaConfig(
    metric="rtt_ms", refresh_hours=1.0, epsilon=0.25, min_direct_samples=1, seed=42
)

_SITES = ("US", "GB", "IN", "SG")
_OPTIONS = [
    RelayOption.bounce(1),
    RelayOption.bounce(2),
    RelayOption.bounce(3),
    RelayOption.transit(1, 2),
    RelayOption.transit(2, 3),
]


def build_controller_machine(workdir: str | Path | None = None):
    """The machine class, built lazily so hypothesis stays optional."""
    import hypothesis.strategies as st
    from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

    base_dir = Path(workdir) if workdir is not None else None

    class ControllerLifecycleMachine(RuleBasedStateMachine):
        def __init__(self) -> None:
            super().__init__()
            if base_dir is not None:
                base_dir.mkdir(parents=True, exist_ok=True)
            self.root = Path(tempfile.mkdtemp(dir=base_dir, prefix="verify-sm-"))
            self.durable = ViaController(MACHINE_CONFIG, store=Store(self.root / "store"))
            self.twin = ViaController(MACHINE_CONFIG)
            self.t_hours = 0.0
            self.down: frozenset[int] = frozenset()

        def _both(self):
            return (self.durable, self.twin)

        # -- lifecycle rules ------------------------------------------

        @rule(cid=st.integers(0, 3), site=st.sampled_from(_SITES))
        def hello(self, cid: int, site: str) -> None:
            for controller in self._both():
                controller._count_message("hello")
                controller._on_hello(cid, site)

        @rule(
            src=st.integers(0, 3),
            dst=st.integers(0, 3),
            dt=st.floats(0.0, 0.4, allow_nan=False),
            option=st.sampled_from(_OPTIONS),
            rtt=st.floats(1.0, 500.0, allow_nan=False),
            loss=st.floats(0.0, 0.2, allow_nan=False),
            jitter=st.floats(0.0, 40.0, allow_nan=False),
        )
        def measurement(self, src, dst, dt, option, rtt, loss, jitter) -> None:
            if src == dst:
                dst = (dst + 1) % 4
            self.t_hours += dt
            message = MeasurementMessage(
                src_id=src,
                dst_id=dst,
                t_hours=self.t_hours,
                option=encode_option(option),
                rtt_ms=rtt,
                loss_rate=loss,
                jitter_ms=jitter,
            )
            for controller in self._both():
                controller._count_message("measurement")
                controller._on_measurement(message)

        @rule(
            src=st.integers(0, 3),
            dst=st.integers(0, 3),
            dt=st.floats(0.0, 0.4, allow_nan=False),
        )
        def request(self, src, dst, dt) -> None:
            if src == dst:
                dst = (dst + 1) % 4
            self.t_hours += dt
            message = RequestMessage(
                src_id=src,
                dst_id=dst,
                t_hours=self.t_hours,
                options=[encode_option(o) for o in _OPTIONS],
            )
            replies = []
            for controller in self._both():
                controller._count_message("request")
                replies.append(controller._on_request(message))
            assert replies[0].option == replies[1].option, (
                f"durable and storeless controllers disagreed on a reply: "
                f"{replies[0].option} != {replies[1].option}"
            )

        @rule(down=st.frozensets(st.integers(1, 3), max_size=2))
        def outage(self, down: frozenset[int]) -> None:
            self.down = down
            for controller in self._both():
                controller.set_down_relays(down)

        # -- storage rules --------------------------------------------

        @rule()
        def snapshot(self) -> None:
            self.durable.save_store_snapshot()

        @rule()
        def compact(self) -> None:
            self.durable.store.compact()

        @rule()
        def crash_recover(self) -> None:
            # Kill the process mid-stream: drop the raw WAL handle with no
            # seal, no snapshot, no goodbye.
            wal = self.durable.store.wal
            if wal._fh is not None:
                wal._fh.close()
                wal._fh = None
            recovered = ViaController(MACHINE_CONFIG, store=Store(self.root / "store"))
            report = recover(recovered.store, recovered)
            assert report.n_corrupt == 0, f"clean log reported damage: {report}"
            assert _controller_fingerprint(recovered) == _controller_fingerprint(
                self.twin
            ), "recovered controller diverged from its uninterrupted twin"
            # Outage state is operator configuration, not learned state:
            # reapply it, as the operator's runtime config push would.
            recovered.set_down_relays(self.down)
            self.durable = recovered

        # -- standing invariants --------------------------------------

        @invariant()
        def counters_in_lockstep(self) -> None:
            assert self.durable.n_measurements == self.twin.n_measurements
            assert self.durable.n_requests == self.twin.n_requests
            assert self.durable.site_labels == self.twin.site_labels

        @invariant()
        def histories_in_lockstep(self) -> None:
            assert (
                self.durable.policy.history.total_calls()
                == self.twin.policy.history.total_calls()
            )

        def teardown(self) -> None:
            self.durable.store.close()
            shutil.rmtree(self.root, ignore_errors=True)

    return ControllerLifecycleMachine
