"""Reproduction of "VIA: Improving Internet Telephony Call Quality Using
Predictive Relay Selection" (Jiang et al., SIGCOMM 2016).

Quickstart::

    from repro import build_world, generate_trace, WorldConfig, WorkloadConfig
    from repro.simulation import ExperimentPlan, standard_policies
    from repro.analysis import pnr_breakdown

    world = build_world(WorldConfig())
    trace = generate_trace(world.topology, WorkloadConfig(n_calls=50_000))
    plan = ExperimentPlan(world=world, trace=trace)
    results = plan.run(standard_policies(world, "rtt_ms"))
    for name, result in results.items():
        print(name, pnr_breakdown(plan.evaluate(result)))

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.netmodel`   -- synthetic Internet (topology, segments, world)
* :mod:`repro.telephony`  -- calls, codecs, E-model MOS, RTP traces
* :mod:`repro.workload`   -- Skype-like trace generation
* :mod:`repro.core`       -- VIA relay selection (the paper's contribution)
* :mod:`repro.simulation` -- chronological replay (§5.1 methodology)
* :mod:`repro.analysis`   -- PNR, distributions, spatial/temporal patterns
* :mod:`repro.deployment` -- asyncio controller/client testbed (§5.5)
* :mod:`repro.obs`        -- metrics registry, span tracing, profiling hooks
"""

from repro.netmodel import (
    PathMetrics,
    RelayOption,
    OptionKind,
    TopologyConfig,
    World,
    WorldConfig,
    build_world,
)
from repro.workload import TraceDataset, WorkloadConfig, generate_trace
from repro.telephony import Call, CallOutcome
from repro.core import ViaConfig, ViaPolicy, make_via

__version__ = "1.0.0"

__all__ = [
    "PathMetrics",
    "RelayOption",
    "OptionKind",
    "TopologyConfig",
    "World",
    "WorldConfig",
    "build_world",
    "TraceDataset",
    "WorkloadConfig",
    "generate_trace",
    "Call",
    "CallOutcome",
    "ViaConfig",
    "ViaPolicy",
    "make_via",
    "__version__",
]
