"""Command-line interface: run the paper's experiments from a shell.

Subcommands:

* ``simulate`` -- build a world + trace, replay a policy suite, print PNR.
* ``trace``    -- generate a call trace and save it as JSON lines.
* ``testbed``  -- run the §5.5 asyncio controller/client deployment.
* ``quality``  -- E-model MOS / poor-call probability for a metric triple.
* ``policies`` -- list the policy registry (capabilities, config schema).
* ``store``    -- inspect / verify / compact a controller's durable store.
* ``verify``   -- run the conformance verification plane (oracle
  differential, WAL crash-point sweep, lifecycle fuzz).
* ``soak``     -- time-compressed chaos endurance run with invariant
  watchdogs (lifecycle cycling + resource trend lines).

Examples::

    python -m repro simulate --calls 20000 --metric rtt_ms
    python -m repro trace --calls 5000 --out /tmp/trace.jsonl
    python -m repro testbed --pairs 18 --via-rounds 30
    python -m repro quality --rtt 320 --loss 0.012 --jitter 12
    python -m repro policies --name via
    python -m repro store verify /var/lib/via/store
    python -m repro verify --budget full --seed 0
    python -m repro soak --budget smoke --seed 0
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import format_table, pnr_breakdown, relative_improvement
from repro.core.costs import COST_MODEL_NAMES
from repro.netmodel import TopologyConfig, WorldConfig, build_world
from repro.netmodel.metrics import PathMetrics
from repro.simulation import ExperimentPlan, standard_policies
from repro.telephony.quality import mos_from_network, poor_call_probability
from repro.workload import WorkloadConfig, generate_trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="VIA (SIGCOMM 2016) reproduction: predictive relay selection",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="replay a policy suite and report PNR")
    _add_world_args(sim)
    sim.add_argument("--trace-in", default=None,
                     help="replay a saved trace (.jsonl from `repro trace`) "
                          "instead of generating one; world args still "
                          "control the network model")
    sim.add_argument("--metric", default="rtt_ms", choices=COST_MODEL_NAMES,
                     help="objective the policies optimise")
    sim.add_argument("--no-strawmen", action="store_true",
                     help="only default / VIA / oracle")
    sim.add_argument("--warmup-days", type=int, default=2)
    sim.add_argument("--min-pair-calls", type=int, default=100,
                     help="density floor for evaluated AS pairs")
    sim.add_argument("--full-report", action="store_true",
                     help="print the full multi-section report (PNR with "
                          "error bars, percentile improvements, intl/"
                          "domestic split, relay mix)")

    trace = sub.add_parser("trace", help="generate a call trace as JSON lines")
    _add_world_args(trace)
    trace.add_argument("--out", required=True, help="output path (.jsonl)")

    testbed = sub.add_parser("testbed", help="run the §5.5 live deployment")
    testbed.add_argument("--clients", type=int, default=14)
    testbed.add_argument("--pairs", type=int, default=18)
    testbed.add_argument("--measurement-rounds", type=int, default=4)
    testbed.add_argument("--via-rounds", type=int, default=30)
    testbed.add_argument("--seed", type=int, default=99)

    quality = sub.add_parser("quality", help="score a (rtt, loss, jitter) triple")
    quality.add_argument("--rtt", type=float, required=True, help="RTT in ms")
    quality.add_argument("--loss", type=float, required=True, help="loss rate [0,1]")
    quality.add_argument("--jitter", type=float, required=True, help="jitter in ms")

    policies = sub.add_parser(
        "policies", help="list registered selection policies"
    )
    policies.add_argument(
        "--name", default=None,
        help="show one policy in detail: description, capability flags, "
             "and the full config schema with defaults",
    )

    store = sub.add_parser(
        "store", help="inspect/verify/compact a controller's durable store"
    )
    store.add_argument(
        "action",
        choices=("inspect", "verify", "compact"),
        help="inspect: summarise segments/snapshot/archive; "
             "verify: scan for corruption (exit 1 if any); "
             "compact: fold snapshot-covered segments into the archive",
    )
    store.add_argument("dir", help="store root directory (the controller's store_dir)")
    store.add_argument("--retention-windows", type=int, default=8,
                       help="archive windows kept when compacting")

    verify = sub.add_parser(
        "verify", help="run the conformance verification plane"
    )
    verify.add_argument("--budget", choices=("small", "full"), default="small",
                        help="preset check volume (small: quick gate; "
                             "full: acceptance-sized sweep)")
    verify.add_argument("--seed", type=int, default=0,
                        help="master seed; reproduces a failure artifact")
    verify.add_argument("--streams", type=int, default=None,
                        help="override: differential call streams")
    verify.add_argument("--steps", type=int, default=None,
                        help="override: policy steps per differential stream")
    verify.add_argument("--crash-rounds", type=int, default=None,
                        help="override: rounds in the crash-sweep workload")
    verify.add_argument("--time-budget", type=float, default=None,
                        help="wall-clock cap in seconds (legs past the cap "
                             "are skipped and reported as truncated)")
    verify.add_argument("--artifacts-dir", default=".verify-failures",
                        help="where failure artifacts are written")

    soak = sub.add_parser(
        "soak", help="chaos endurance run with invariant watchdogs"
    )
    soak.add_argument("--budget", choices=("smoke", "full"), default="smoke",
                      help="preset run length (smoke: sub-minute CI gate; "
                           "full: hours-long endurance run)")
    soak.add_argument("--seed", type=int, default=0,
                      help="master seed; traffic, chaos plan and report "
                           "fingerprint are all derived from it")
    soak.add_argument("--ticks", type=int, default=None,
                      help="override: soak length in ticks")
    soak.add_argument("--shards", type=int, default=None,
                      help="override: run an N-shard ring instead of a "
                           "single controller (0 or 1 soaks a single "
                           "controller)")
    soak.add_argument("--plant-leak", choices=("objects", "fds", "series"),
                      default=None,
                      help="deliberately plant a leak to self-test the "
                           "watchdog (the run must FAIL, naming the "
                           "matching invariant)")
    soak.add_argument("--time-budget", type=float, default=None,
                      help="wall-clock cap in seconds (remaining ticks are "
                           "skipped and reported as truncated)")
    soak.add_argument("--artifacts-dir", default=".soak-failures",
                      help="where failure artifacts are written")
    soak.add_argument("--out", default=None,
                      help="also write the full report JSON here, pass or fail")

    return parser


def _add_world_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--calls", type=int, default=20_000)
    parser.add_argument("--pairs-population", type=int, default=400, dest="n_pairs")
    parser.add_argument("--days", type=int, default=15)
    parser.add_argument("--countries", type=int, default=20)
    parser.add_argument("--relays", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)


def _build_world(args: argparse.Namespace):
    return build_world(
        WorldConfig(
            topology=TopologyConfig(n_countries=args.countries, n_relays=args.relays),
            n_days=args.days,
            seed=args.seed,
        )
    )


def _build_world_and_trace(args: argparse.Namespace):
    world = _build_world(args)
    trace = generate_trace(
        world.topology,
        WorkloadConfig(n_calls=args.calls, n_pairs=args.n_pairs, seed=args.seed),
        n_days=args.days,
    )
    return world, trace


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.trace_in:
        from repro.workload import TraceDataset

        world = _build_world(args)
        trace = TraceDataset.load_jsonl(args.trace_in)
    else:
        world, trace = _build_world_and_trace(args)
    plan = ExperimentPlan(
        world=world, trace=trace,
        warmup_days=args.warmup_days, min_pair_calls=args.min_pair_calls,
    )
    policies = standard_policies(
        world, args.metric, include_strawmen=not args.no_strawmen
    )
    results = plan.run(policies, seed=args.seed)
    if args.full_report:
        from repro.analysis import experiment_report

        evaluated = {name: plan.evaluate(r) for name, r in results.items()}
        print(experiment_report(evaluated, metric=args.metric, results=results))
        return 0
    base = pnr_breakdown(plan.evaluate(results["default"]))
    rows = []
    for name, result in results.items():
        breakdown = pnr_breakdown(plan.evaluate(result))
        shown = args.metric if args.metric in breakdown else "any"
        rows.append([
            name,
            f"{breakdown[shown]:.3f}",
            f"{breakdown['any']:.3f}",
            f"{relative_improvement(base[shown], breakdown[shown]):.0f}%",
        ])
    print(format_table(
        ["strategy", f"PNR({args.metric})" if args.metric in base else "PNR(any)",
         "PNR(any)", "improvement"],
        rows,
        title=f"Simulation: {len(trace):,} calls, {len(plan.dense)} dense pairs, "
              f"optimising {args.metric}",
    ))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    _world, trace = _build_world_and_trace(args)
    trace.save_jsonl(args.out)
    summary = trace.summary()
    print(f"wrote {summary.n_calls:,} calls to {args.out} "
          f"({100 * summary.frac_international:.0f}% international, "
          f"{summary.n_as_pairs} AS pairs, {args.days} days)")
    return 0


def _cmd_testbed(args: argparse.Namespace) -> int:
    from repro.deployment import TestbedConfig, run_testbed

    report = run_testbed(
        TestbedConfig(
            n_clients=args.clients,
            n_pairs=args.pairs,
            measurement_rounds=args.measurement_rounds,
            via_rounds=args.via_rounds,
            seed=args.seed,
        )
    )
    print(format_table(
        ["statistic", "value"],
        [
            ["pairs", report.n_pairs],
            ["VIA-driven calls", report.n_calls],
            ["measurement calls", report.n_measurements],
            ["options per pair", f"{min(report.options_per_pair)}-{max(report.options_per_pair)}"],
            ["picked exact best", f"{report.frac_exact_best:.0%}"],
            ["within 20% of oracle", f"{report.frac_within(0.2):.0%}"],
            ["within 50% of oracle", f"{report.frac_within(0.5):.0%}"],
        ],
        title="§5.5 controlled deployment (Figure 18)",
    ))
    return 0


def _cmd_quality(args: argparse.Namespace) -> int:
    try:
        metrics = PathMetrics(rtt_ms=args.rtt, loss_rate=args.loss, jitter_ms=args.jitter)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    mos = mos_from_network(metrics)
    pcr = poor_call_probability(metrics)
    print(f"MOS = {mos:.2f}   P(rated poor) = {pcr:.1%}")
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    from repro.core.registry import REGISTRY, UnknownPolicyError

    def flags(entry) -> str:
        letters = [
            "B" if entry.supports_batch else "-",
            "C" if entry.supports_checkpoint else "-",
            "M" if entry.supports_multipath else "-",
            "W" if entry.needs_world else "-",
        ]
        return "".join(letters)

    if args.name is not None:
        try:
            entry = REGISTRY.get(args.name)
        except UnknownPolicyError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"{entry.name}: {entry.description}")
        print(format_table(
            ["capability", "value"],
            [
                ["batch (assign_many/observe_many)", str(entry.supports_batch)],
                ["checkpoint (state_dict)", str(entry.supports_checkpoint)],
                ["multipath (assign_paths)", str(entry.supports_multipath)],
                ["needs world", str(entry.needs_world)],
            ],
        ))
        if entry.schema:
            print(format_table(
                ["config field", "type", "default"],
                [[f.name, f.type, repr(f.default)] for f in entry.schema],
                title="Config schema (pass as build overrides)",
            ))
        else:
            print("no configurable fields beyond metric/seed")
        return 0
    rows = [
        [entry.name, flags(entry), entry.description]
        for entry in REGISTRY.entries()
    ]
    print(format_table(
        ["policy", "BCMW", "description"],
        rows,
        title="Policy registry (B=batch C=checkpoint M=multipath W=needs-world); "
              "`repro policies --name NAME` for the config schema",
    ))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.store import (
        Store,
        StoreConfig,
        read_segment,
        read_wal,
    )

    root = Path(args.dir)
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    wal_dir = root / "wal"
    snapshot_path = root / "snapshot.json"
    compacted_path = root / "compacted.json"

    if args.action == "compact":
        store = Store(root, StoreConfig(retention_windows=args.retention_windows))
        try:
            result = store.compact()
        finally:
            store.close()
        print(format_table(
            ["statistic", "value"],
            [
                ["segments folded", result.n_segments],
                ["measurements archived", result.n_measurements],
                ["non-measurement records", result.n_skipped],
                ["corrupt records", result.n_corrupt],
                ["windows pruned", result.n_windows_pruned],
                ["bytes reclaimed", result.bytes_reclaimed],
            ],
            title=f"Compaction of {root}",
        ))
        return 0

    # inspect / verify share the read-only scan.
    from repro.store.wal import segment_paths

    snapshot_seq = 0
    snapshot_state = "missing"
    if snapshot_path.exists():
        try:
            payload = json.loads(snapshot_path.read_text(encoding="utf-8"))
            from repro.store import SNAPSHOT_FORMAT

            if payload.get("format") != SNAPSHOT_FORMAT:
                raise ValueError(payload.get("format"))
            snapshot_seq = int(payload["last_seq"])
            snapshot_state = "ok"
        except (ValueError, KeyError, TypeError, json.JSONDecodeError):
            snapshot_state = "corrupt"

    archive_state = "missing"
    archive_calls = 0
    if compacted_path.exists():
        try:
            from repro.store import COMPACTED_FORMAT

            payload = json.loads(compacted_path.read_text(encoding="utf-8"))
            if payload.get("format") != COMPACTED_FORMAT:
                raise ValueError(payload.get("format"))
            archive_calls = int(payload.get("n_calls", 0))
            archive_state = "ok"
        except (ValueError, KeyError, TypeError, json.JSONDecodeError):
            archive_state = "corrupt"

    if args.action == "inspect":
        rows = []
        for path in segment_paths(wal_dir) if wal_dir.is_dir() else []:
            seg = read_segment(path)
            seqs = [r["seq"] for r in seg.records]
            health = "torn" if seg.torn else ("corrupt" if seg.n_corrupt else "ok")
            rows.append([
                path.name,
                f"{min(seqs)}-{max(seqs)}" if seqs else "-",
                len(seg.records),
                path.stat().st_size,
                health,
            ])
        if rows:
            print(format_table(
                ["segment", "seq range", "records", "bytes", "health"],
                rows, title=f"WAL segments under {wal_dir}",
            ))
        else:
            print(f"no WAL segments under {wal_dir}")
        print(format_table(
            ["statistic", "value"],
            [
                ["snapshot", f"{snapshot_state} (covers seq {snapshot_seq})"],
                ["compacted archive", f"{archive_state} ({archive_calls} calls)"],
            ],
        ))
        return 0

    # verify: exit 1 on any damage anywhere in the store.
    result = read_wal(wal_dir) if wal_dir.is_dir() else None
    n_corrupt = result.n_corrupt if result else 0
    n_torn = result.n_torn_segments if result else 0
    n_records = len(result.records) if result else 0
    seqs = set(r["seq"] for r in result.records) if result else set()
    missing: set[int] = set()
    if seqs:
        missing = set(range(min(seqs), max(seqs) + 1)) - seqs
    gaps = len(missing)
    damaged = (
        n_corrupt > 0
        or n_torn > 0
        or snapshot_state == "corrupt"
        or archive_state == "corrupt"
        # A seq gap below the snapshot horizon is fine (compacted away);
        # one above it means records recovery needs are gone.
        or any(s > snapshot_seq for s in missing)
    )
    print(format_table(
        ["check", "result"],
        [
            ["WAL records readable", n_records],
            ["corrupt frames", n_corrupt],
            ["torn segments", n_torn],
            ["seq gaps", gaps],
            ["snapshot", snapshot_state],
            ["compacted archive", archive_state],
        ],
        title=f"Verification of {root}: {'DAMAGED' if damaged else 'clean'}",
    ))
    return 1 if damaged else 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.verify import VerifyBudget, run_verify

    preset = VerifyBudget.full if args.budget == "full" else VerifyBudget.small
    budget = preset(seed=args.seed)
    overrides = {}
    if args.streams is not None:
        overrides["differential_streams"] = args.streams
    if args.steps is not None:
        overrides["differential_steps"] = args.steps
    if args.crash_rounds is not None:
        overrides["crash_rounds"] = args.crash_rounds
    if args.time_budget is not None:
        overrides["time_budget_s"] = args.time_budget
    if overrides:
        budget = dataclasses.replace(budget, **overrides)
    report = run_verify(budget, artifacts_dir=args.artifacts_dir)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_soak(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from repro.soak import SoakBudget, run_soak

    preset = SoakBudget.full if args.budget == "full" else SoakBudget.smoke
    budget = preset(seed=args.seed)
    overrides = {}
    if args.ticks is not None:
        overrides["ticks"] = args.ticks
    if args.shards is not None:
        overrides["n_shards"] = args.shards
    if args.time_budget is not None:
        overrides["time_budget_s"] = args.time_budget
    if overrides:
        budget = dataclasses.replace(budget, **overrides)
    report = run_soak(
        budget, artifacts_dir=args.artifacts_dir, plant=args.plant_leak
    )
    if args.out is not None:
        from pathlib import Path

        Path(args.out).write_text(
            json.dumps(report.to_dict(), indent=2, default=repr), encoding="utf-8"
        )
    print(report.summary())
    return 0 if report.ok else 1


_COMMANDS = {
    "simulate": _cmd_simulate,
    "trace": _cmd_trace,
    "testbed": _cmd_testbed,
    "quality": _cmd_quality,
    "policies": _cmd_policies,
    "store": _cmd_store,
    "verify": _cmd_verify,
    "soak": _cmd_soak,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
