"""Trace replay: the §5.1 evaluation methodology.

Calls are replayed chronologically; each policy assigns a relaying option
per call and the world draws the realised performance from the (pair,
option, 24-hour window) ground-truth distribution.  Policies learn only
from the outcomes of the calls they assigned.

Grids of independent replays -- (policy x seed x metric), optionally
across several worlds -- can fan out over a process pool through
:mod:`repro.simulation.parallel` with results bit-identical to a serial
run.
"""

from repro.simulation.replay import ReplayResult, replay
from repro.simulation.experiment import (
    ExperimentPlan,
    dense_pairs,
    evaluation_slice,
    make_inter_relay_lookup,
    run_policies,
    standard_policies,
)
from repro.simulation.parallel import (
    PolicySpec,
    ReplayTask,
    ScenarioSpec,
    TaskResult,
    merged_stats,
    outcome_stat,
    run_grid,
    standard_policy_specs,
    task_seed,
)

__all__ = [
    "ReplayResult",
    "replay",
    "ExperimentPlan",
    "dense_pairs",
    "evaluation_slice",
    "make_inter_relay_lookup",
    "run_policies",
    "standard_policies",
    "PolicySpec",
    "ReplayTask",
    "ScenarioSpec",
    "TaskResult",
    "merged_stats",
    "outcome_stat",
    "run_grid",
    "standard_policy_specs",
    "task_seed",
]
