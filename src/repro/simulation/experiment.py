"""Experiment orchestration: build policy suites, replay, slice for eval.

Provides the pieces every benchmark shares:

* :func:`standard_policies` -- the §5.2 strategy suite (default, oracle,
  Strawman I, Strawman II, VIA) for one metric,
* :func:`run_policies` -- replay each policy over the same trace,
* :func:`dense_pairs` / :func:`evaluation_slice` -- the §5.1 density
  filter (the paper keeps AS pairs with enough calls over enough options)
  and warm-up trimming, so PNR is computed on comparable populations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.policy import SelectionPolicy
from repro.core.registry import world_inter_relay
from repro.core.tomography import InterRelayLookup
from repro.netmodel.world import World
from repro.simulation.replay import ReplayResult, replay
from repro.telephony.call import CallOutcome
from repro.telephony.quality import QualityModel
from repro.workload.trace import TraceDataset

__all__ = [
    "ExperimentPlan",
    "make_inter_relay_lookup",
    "standard_policies",
    "run_policies",
    "dense_pairs",
    "evaluation_slice",
]


def make_inter_relay_lookup(world: World) -> InterRelayLookup:
    """The provider's knowledge of its own backbone (§4.4).

    The paper had Skype's measured RTT/loss/jitter between relay nodes; we
    expose the backbone segments' base performance, which the stable
    private-WAN regime keeps accurate.  Delegates to
    :func:`repro.core.registry.world_inter_relay`, the canonical lookup
    every registry-built policy closes over.
    """
    return world_inter_relay(world)


def standard_policies(
    world: World,
    metric: str,
    *,
    seed: int = 42,
    include_strawmen: bool = True,
) -> dict[str, SelectionPolicy]:
    """The strategy suite Figure 12 compares, keyed by short name.

    Built from :func:`~repro.simulation.parallel.standard_policy_specs`
    through the policy registry, so the suite here and the one handed to
    multiprocess ``run_grid`` are the same recipes.
    """
    from repro.simulation.parallel import standard_policy_specs

    return {
        name: spec.build(world)
        for name, spec in standard_policy_specs(
            metric, seed=seed, include_strawmen=include_strawmen
        ).items()
    }


def run_policies(
    world: World,
    trace: TraceDataset,
    policies: dict[str, SelectionPolicy],
    *,
    seed: int = 0,
    quality: QualityModel | None = None,
    workers: int = 1,
) -> dict[str, ReplayResult]:
    """Replay the same trace through each policy with a shared noise seed.

    ``policies`` values may be live :class:`SelectionPolicy` objects or
    picklable :class:`~repro.simulation.parallel.PolicySpec` recipes
    (specs are built against ``world`` before replaying).  With
    ``workers > 1`` the replays fan out over a process pool -- every
    value must then be a spec, because live policies cannot cross the
    process boundary; build the suite with
    :func:`~repro.simulation.parallel.standard_policy_specs`.  Results
    are bit-identical to the serial path either way.
    """
    from repro.simulation.parallel import PolicySpec, ReplayTask, run_grid

    if workers > 1:
        live = [
            name for name, p in policies.items() if not isinstance(p, PolicySpec)
        ]
        if live:
            raise TypeError(
                f"run_policies(workers={workers}) needs PolicySpec values so "
                f"workers can rebuild the policies; got live policies for "
                f"{live}.  Build the suite with standard_policy_specs()."
            )
        tasks = [
            ReplayTask(policy=spec, seed=seed, label=name)
            for name, spec in policies.items()
        ]
        results = run_grid(
            tasks, world=world, trace=trace, workers=workers, quality=quality
        )
        return {r.task.label: r.result for r in results}
    return {
        name: replay(
            world,
            trace,
            policy.build(world) if isinstance(policy, PolicySpec) else policy,
            seed=seed,
            quality=quality,
        )
        for name, policy in policies.items()
    }


def dense_pairs(trace: TraceDataset, min_calls: int = 50) -> set[tuple[int, int]]:
    """AS pairs with enough call volume for statistically meaningful PNR.

    The §5.1 analogue of the paper's ">= 10 calls on >= 5 relay options
    per window" filter, expressed as a total-volume floor.
    """
    if min_calls < 1:
        raise ValueError("min_calls must be >= 1")
    return {pair for pair, count in trace.pair_counts().items() if count >= min_calls}


def evaluation_slice(
    outcomes: list[CallOutcome],
    *,
    warmup_days: int = 0,
    pairs: set[tuple[int, int]] | None = None,
) -> list[CallOutcome]:
    """Outcomes used for scoring: after warm-up, dense pairs only."""
    cutoff_hours = warmup_days * 24.0
    kept = []
    for outcome in outcomes:
        call = outcome.call
        if call.t_hours < cutoff_hours:
            continue
        if pairs is not None and call.as_pair not in pairs:
            continue
        kept.append(outcome)
    return kept


@dataclass(slots=True)
class ExperimentPlan:
    """A reusable bundle: world + trace + evaluation filters.

    Benches construct one plan and run many policy suites against it;
    ``evaluate`` applies the same slice to every result so comparisons are
    apples-to-apples.
    """

    world: World
    trace: TraceDataset
    warmup_days: int = 2
    min_pair_calls: int = 50
    _dense: set[tuple[int, int]] | None = field(default=None, repr=False)

    @property
    def dense(self) -> set[tuple[int, int]]:
        if self._dense is None:
            self._dense = dense_pairs(self.trace, self.min_pair_calls)
        return self._dense

    def evaluate(self, result: ReplayResult) -> list[CallOutcome]:
        return evaluation_slice(
            result.outcomes, warmup_days=self.warmup_days, pairs=self.dense
        )

    def run(
        self,
        policies: dict[str, SelectionPolicy],
        *,
        seed: int = 0,
        quality: QualityModel | None = None,
        workers: int = 1,
    ) -> dict[str, ReplayResult]:
        return run_policies(
            self.world,
            self.trace,
            policies,
            seed=seed,
            quality=quality,
            workers=workers,
        )
