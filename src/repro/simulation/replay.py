"""Chronological trace replay against one policy.

Implements the simulation semantics of §5.1: calls are replayed in trace
order; when a policy assigns call *c* to option *r*, its realised
performance is a fresh draw from the ground-truth distribution of
(*c*'s pair, *r*, *c*'s day) -- equivalent to sampling a random call from
the same pair/option/window.  The policy then observes that outcome, so it
"gains knowledge as it goes along".
"""

from __future__ import annotations

import logging

from dataclasses import dataclass, field

import numpy as np

from typing import TYPE_CHECKING

from repro.core.multipath import combined_metrics
from repro.core.policy import SelectionPolicy
from repro.netmodel.metrics import METRICS
from repro.netmodel.world import World
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import REGISTRY
from repro.telephony.call import CallOutcome
from repro.telephony.quality import QualityModel
from repro.workload.trace import TraceDataset

#: Replay progress instruments on the default registry.  Fed only while
#: observability is enabled; an operator watching a long replay sees the
#: current epoch (24 h day), calls done, and the completed fraction.
_G_DAY = REGISTRY.gauge(
    "via_replay_day", "Trace day (24 h epoch) the replay is currently in."
)
_G_CALLS = REGISTRY.gauge(
    "via_replay_calls_done", "Calls replayed so far in the current replay."
)
_G_FRACTION = REGISTRY.gauge(
    "via_replay_progress_fraction", "Completed fraction of the current replay."
)
_C_CALLS = REGISTRY.counter(
    "via_replay_calls_total", "Calls replayed across all replays, by policy.",
    ("policy",),
)

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.core.probing import ActiveProber

__all__ = ["ReplayResult", "replay"]

logger = logging.getLogger(__name__)

#: Policy names already warned about a silent batch→scalar fallback, so a
#: grid of replays logs each offender once instead of once per task.
_WARNED_NO_BATCH_API: set[str] = set()


@dataclass(slots=True)
class ReplayResult:
    """Outcomes of one (policy, trace) replay plus bookkeeping."""

    policy_name: str
    outcomes: list[CallOutcome] = field(default_factory=list)
    #: Active mock-call probes issued during the replay (§7 extension).
    n_probes: int = 0
    #: Per-outcome flag: was any relay outage active when the call ran?
    #: Empty when the world had no scheduled outages.
    outage_flags: list[bool] = field(default_factory=list)
    #: Calls that were actually assigned to an option riding a down relay.
    #: For multipath calls this means *both* paths were down.
    n_dead_assignments: int = 0
    #: Multipath calls that lost exactly one of their two paths to an
    #: outage: still connected, but degraded (duplicated calls keep the
    #: surviving path's quality; split calls lose that path's share).
    n_degraded_assignments: int = 0

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def n_outage_calls(self) -> int:
        """Calls placed while at least one relay outage was active."""
        return sum(self.outage_flags)

    def outage_degradation(self, metric: str) -> dict[str, float] | None:
        """Mean ``metric`` during vs outside outage windows.

        Returns ``{"during": ..., "outside": ..., "ratio": ...}`` or None
        when the replay saw no outage window (or no calls on one side).
        """
        if metric not in METRICS:
            raise KeyError(
                f"unknown metric {metric!r}; valid metrics: {', '.join(METRICS)}"
            )
        if not self.outage_flags:
            return None
        during = [
            o.metrics.get(metric)
            for o, flagged in zip(self.outcomes, self.outage_flags)
            if flagged
        ]
        outside = [
            o.metrics.get(metric)
            for o, flagged in zip(self.outcomes, self.outage_flags)
            if not flagged
        ]
        if not during or not outside:
            return None
        mean_during = float(np.mean(during))
        mean_outside = float(np.mean(outside))
        return {
            "during": mean_during,
            "outside": mean_outside,
            "ratio": mean_during / max(mean_outside, 1e-12),
        }

    @property
    def relayed_fraction(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.option.is_relayed for o in self.outcomes) / len(self.outcomes)

    def option_mix(self) -> dict[str, float]:
        """Fraction of calls per option kind (the §5.2 relay-mix numbers)."""
        if not self.outcomes:
            return {}
        counts: dict[str, int] = {}
        for outcome in self.outcomes:
            kind = outcome.option.kind.value
            counts[kind] = counts.get(kind, 0) + 1
        total = len(self.outcomes)
        return {kind: count / total for kind, count in counts.items()}


def replay(
    world: World,
    trace: TraceDataset,
    policy: SelectionPolicy,
    *,
    seed: int = 0,
    quality: QualityModel | None = None,
    prober: "ActiveProber | None" = None,
    batch_calls: int = 1,
) -> ReplayResult:
    """Replay ``trace`` through ``policy`` on ``world``.

    ``quality`` optionally samples user ratings for a fraction of calls
    (used by the PCR analyses); pass ``QualityModel(rating_fraction=...)``.
    ``prober`` optionally executes active mock-call measurements between
    real calls (the §7 extension; see :mod:`repro.core.probing`).

    ``batch_calls > 1`` routes through the policy's vectorised
    ``assign_many``/``observe_many`` interface in chunks of up to that many
    calls (trimmed at relay-outage boundaries).  Within a chunk the policy
    assigns every call before observing any outcome, so learning feedback
    is delayed by up to one chunk relative to the serial interleaving --
    the documented batch-semantics trade-off (``docs/performance.md``).
    ``batch_calls=1`` is the serial path, bit for bit.  Policies without a
    batch interface, and replays using a prober or a probing policy, fall
    back to serial regardless.

    The outcome RNG is derived from ``seed`` only, so two policies replayed
    with the same seed face identical noise *processes* (though different
    assignment sequences consume draws differently).
    """
    if batch_calls < 1:
        raise ValueError(f"batch_calls must be >= 1: {batch_calls}")
    rng = np.random.default_rng(seed)
    result = ReplayResult(policy_name=policy.name)
    if getattr(policy, "assign_paths", None) is not None:
        # Multipath policies commit every call to a two-path PathSet; they
        # have their own loop because each call consumes two ground-truth
        # draws and scores the combined stream.
        return _replay_multipath(world, trace, policy, rng, result, quality=quality)
    if (
        batch_calls > 1
        and prober is None
        and getattr(policy, "plan_probe", None) is None
    ):
        if hasattr(policy, "assign_many") and hasattr(policy, "observe_many"):
            return _replay_batched(
                world, trace, policy, rng, result,
                quality=quality, batch_calls=batch_calls,
            )
        # The caller asked for the batch hot path but this policy cannot
        # serve it; say so once rather than silently running ~15x slower.
        if policy.name not in _WARNED_NO_BATCH_API:
            _WARNED_NO_BATCH_API.add(policy.name)
            logger.info(
                "replay(batch_calls=%d): policy %s has no assign_many/"
                "observe_many; falling back to the scalar loop",
                batch_calls,
                policy.name,
            )
    outcomes = result.outcomes
    sample_call = world.sample_call
    options_for_pair = world.options_for_pair
    probe_call_id = -1
    plan_probe = getattr(policy, "plan_probe", None)
    # Relay outages: keep the policy's down-relay set in sync with the
    # world's schedule, and flag every outcome that ran during a window.
    outages = tuple(getattr(world, "outages", ()))
    set_down = getattr(policy, "set_down_relays", None) if outages else None
    last_down: frozenset[int] | None = None
    n_total = len(trace)
    obs_calls = _C_CALLS.labels(policy=policy.name)
    last_day = -1
    for call in trace:
        if obs_runtime.enabled:
            day = int(call.t_hours // 24.0)
            if day != last_day:
                _G_DAY.set(day)
                last_day = day
            done = len(outcomes)
            _G_CALLS.set(done)
            _G_FRACTION.set(done / n_total if n_total else 1.0)
            obs_calls.inc()
        if outages:
            down = world.relays_down_at(call.t_hours)
            if set_down is not None and down != last_down:
                set_down(down)
                last_down = down
            result.outage_flags.append(bool(down))
        options = options_for_pair(call.src_asn, call.dst_asn)
        if call.direct_blocked:
            # NAT/firewall pair: the default path is not establishable, so
            # only relayed options are on the table (§2.1).
            options = [o for o in options if o.is_relayed]
        if plan_probe is not None:
            plan = plan_probe(call, options)
            if plan is not None:
                outcome = _probed_outcome(world, policy, call, plan, rng, quality)
                # Probed calls commit to a real assignment too; a winner
                # riding a down relay is just as dead as a directly
                # assigned one, so it gets the same accounting.
                if outages and not world.option_available(
                    outcome.option, call.t_hours
                ):
                    result.n_dead_assignments += 1
                outcomes.append(outcome)
                continue
        option = policy.assign(call, options)
        if outages and not world.option_available(option, call.t_hours):
            result.n_dead_assignments += 1
        metrics = sample_call(
            call.src_asn,
            call.dst_asn,
            option,
            call.t_hours,
            rng,
            src_wireless=call.src_wireless,
            dst_wireless=call.dst_wireless,
            src_prefix=call.src_prefix,
            dst_prefix=call.dst_prefix,
        )
        policy.observe(call, option, metrics)
        rating = quality.maybe_rate(metrics, rng) if quality is not None else None
        outcomes.append(CallOutcome(call=call, option=option, metrics=metrics, rating=rating))
        if prober is not None:
            for request in prober.probes_after(call):
                src, dst, probe_option = request
                mock = prober.make_probe_call(request, call.t_hours, probe_call_id)
                probe_call_id -= 1
                probe_metrics = sample_call(src, dst, probe_option, call.t_hours, rng)
                policy.observe(mock, probe_option, probe_metrics)
    if obs_runtime.enabled:
        _G_CALLS.set(len(outcomes))
        _G_FRACTION.set(1.0)
    result.n_probes = prober.n_probes_issued if prober is not None else 0
    return result


def _replay_batched(
    world: World,
    trace: TraceDataset,
    policy: SelectionPolicy,
    rng: np.random.Generator,
    result: ReplayResult,
    *,
    quality: QualityModel | None,
    batch_calls: int,
) -> ReplayResult:
    """Chunked replay through ``assign_many``/``observe_many``.

    Chunks never span a relay-outage boundary, so the policy's down-relay
    set stays synchronised exactly as in the serial loop.  Per-call outcome
    sampling (and optional rating) consumes the outcome RNG in the same
    order as serial replay -- ``batch_calls=1`` therefore reproduces the
    serial result bit for bit, while larger chunks differ only through the
    documented delayed-feedback semantics of the batch interface.
    """
    outcomes = result.outcomes
    sample_call = world.sample_call
    options_for_pair = world.options_for_pair
    outages = tuple(getattr(world, "outages", ()))
    set_down = getattr(policy, "set_down_relays", None) if outages else None
    last_down: frozenset[int] | None = None
    n_total = len(trace)
    obs_calls = _C_CALLS.labels(policy=policy.name)
    last_day = -1
    calls = list(trace)
    n = len(calls)
    i = 0
    while i < n:
        if outages:
            # Trim the chunk at the first outage transition so one
            # ``set_down_relays`` call covers every call in it.
            down = world.relays_down_at(calls[i].t_hours)
            j = i + 1
            while j < n and j - i < batch_calls:
                if world.relays_down_at(calls[j].t_hours) != down:
                    break
                j += 1
            if set_down is not None and down != last_down:
                set_down(down)
                last_down = down
            result.outage_flags.extend([bool(down)] * (j - i))
        else:
            j = min(i + batch_calls, n)
        chunk = calls[i:j]
        if obs_runtime.enabled:
            day = int(chunk[0].t_hours // 24.0)
            if day != last_day:
                _G_DAY.set(day)
                last_day = day
            done = len(outcomes)
            _G_CALLS.set(done)
            _G_FRACTION.set(done / n_total if n_total else 1.0)
            obs_calls.inc(len(chunk))
        options_per_call = []
        for call in chunk:
            options = options_for_pair(call.src_asn, call.dst_asn)
            if call.direct_blocked:
                options = [o for o in options if o.is_relayed]
            options_per_call.append(options)
        choices = policy.assign_many(chunk, options_per_call)
        metrics_rows = []
        for call, option in zip(chunk, choices):
            if outages and not world.option_available(option, call.t_hours):
                result.n_dead_assignments += 1
            metrics = sample_call(
                call.src_asn,
                call.dst_asn,
                option,
                call.t_hours,
                rng,
                src_wireless=call.src_wireless,
                dst_wireless=call.dst_wireless,
                src_prefix=call.src_prefix,
                dst_prefix=call.dst_prefix,
            )
            metrics_rows.append(metrics)
            rating = quality.maybe_rate(metrics, rng) if quality is not None else None
            outcomes.append(
                CallOutcome(call=call, option=option, metrics=metrics, rating=rating)
            )
        policy.observe_many(chunk, choices, metrics_rows)
        i = j
    if obs_runtime.enabled:
        _G_CALLS.set(len(outcomes))
        _G_FRACTION.set(1.0)
    return result


def _replay_multipath(
    world: World,
    trace: TraceDataset,
    policy,
    rng: np.random.Generator,
    result: ReplayResult,
    *,
    quality: QualityModel | None,
) -> ReplayResult:
    """Replay through a multipath policy's ``assign_paths`` interface.

    Each call rides a :class:`~repro.core.multipath.PathSet` of two
    concurrent relay paths.  Both constituents get an independent
    ground-truth draw (primary first, then secondary, so the RNG stream
    stays deterministic), and the recorded outcome carries the *combined*
    stream metrics -- best-of for duplication, weighted blend for
    splitting.  Outage accounting distinguishes losing both paths
    (``n_dead_assignments``) from losing exactly one
    (``n_degraded_assignments``); per-path samples during an outage show
    the world's outage penalty, so duplicated calls survive on the live
    path while split calls degrade in proportion to the lost share.
    """
    outcomes = result.outcomes
    sample_call = world.sample_call
    options_for_pair = world.options_for_pair
    outages = tuple(getattr(world, "outages", ()))
    set_down = getattr(policy, "set_down_relays", None) if outages else None
    last_down: frozenset[int] | None = None
    n_total = len(trace)
    obs_calls = _C_CALLS.labels(policy=policy.name)
    last_day = -1
    for call in trace:
        if obs_runtime.enabled:
            day = int(call.t_hours // 24.0)
            if day != last_day:
                _G_DAY.set(day)
                last_day = day
            done = len(outcomes)
            _G_CALLS.set(done)
            _G_FRACTION.set(done / n_total if n_total else 1.0)
            obs_calls.inc()
        if outages:
            down = world.relays_down_at(call.t_hours)
            if set_down is not None and down != last_down:
                set_down(down)
                last_down = down
            result.outage_flags.append(bool(down))
        options = options_for_pair(call.src_asn, call.dst_asn)
        if call.direct_blocked:
            options = [o for o in options if o.is_relayed]
        path_set = policy.assign_paths(call, options)
        if outages:
            primary_up = world.option_available(path_set.primary, call.t_hours)
            secondary_up = world.option_available(path_set.secondary, call.t_hours)
            if not primary_up and not secondary_up:
                result.n_dead_assignments += 1
            elif not (primary_up and secondary_up):
                result.n_degraded_assignments += 1
        kwargs = dict(
            src_wireless=call.src_wireless,
            dst_wireless=call.dst_wireless,
            src_prefix=call.src_prefix,
            dst_prefix=call.dst_prefix,
        )
        primary_metrics = sample_call(
            call.src_asn, call.dst_asn, path_set.primary, call.t_hours, rng, **kwargs
        )
        secondary_metrics = sample_call(
            call.src_asn, call.dst_asn, path_set.secondary, call.t_hours, rng, **kwargs
        )
        combined = combined_metrics(path_set, primary_metrics, secondary_metrics)
        policy.observe_paths(
            call, path_set, primary_metrics, secondary_metrics, combined
        )
        rating = quality.maybe_rate(combined, rng) if quality is not None else None
        outcomes.append(
            CallOutcome(
                call=call, option=path_set.primary, metrics=combined, rating=rating
            )
        )
    if obs_runtime.enabled:
        _G_CALLS.set(len(outcomes))
        _G_FRACTION.set(1.0)
    return result


def _probed_outcome(world, policy, call, plan, rng, quality) -> CallOutcome:
    """One hybrid-reactive call: probe candidates, switch to the winner.

    Media rides the predicted-best candidate during the probe window; the
    call then continues on the observed winner.  The recorded metrics are
    the duration-weighted blend of both phases (see
    :mod:`repro.core.hybrid`).
    """
    from repro.core.hybrid import blend_call_metrics

    kwargs = dict(
        src_wireless=call.src_wireless,
        dst_wireless=call.dst_wireless,
        src_prefix=call.src_prefix,
        dst_prefix=call.dst_prefix,
    )
    samples = {
        candidate: world.sample_call(
            call.src_asn, call.dst_asn, candidate, call.t_hours, rng, **kwargs
        )
        for candidate in plan.candidates
    }
    final = policy.commit_probe(call, plan, samples)
    rest = world.sample_call(
        call.src_asn, call.dst_asn, final, call.t_hours, rng, **kwargs
    )
    policy.observe(call, final, rest)
    metrics = blend_call_metrics(
        samples[plan.primary], rest, policy.probe_weight(call)
    )
    rating = quality.maybe_rate(metrics, rng) if quality is not None else None
    return CallOutcome(call=call, option=final, metrics=metrics, rating=rating)
