"""Hot-path microbenchmark: scalar vs vectorised assignment throughput.

One function, :func:`hot_path_microbench`, drives the same synthetic
assignment workload through the scalar ``assign``/``observe`` loop and
through the chunked ``assign_many``/``observe_many`` batch interface, and
reports calls/sec, per-call latency percentiles and the speedup ratio.
It is shared by two consumers:

* ``benchmarks/bench_ext_parallel_replay.py`` runs the full-size workload,
  asserts the PR's >= 10x hot-path target, and (under
  ``REPRO_BENCH_RECORD=1``) records the summary to ``BENCH_core.json``;
* ``scripts/ci_check.py`` runs a reduced workload and fails ``make check``
  when the measured speedup regresses more than 20% against that
  committed baseline.

The workload is the vector path's favourable-but-honest regime
(documented in ``docs/performance.md``): a few ASNs, so each chunk
contains many calls per (pair, blocked) group, and a realistic option
menu (direct + sixteen bounce relays + four transits).  The trace spans a
single refresh period, keeping the measurement on the per-call hot path
(both paths pay the identical, unvectorised refresh cost).  Metric
triples are synthesised per call up front -- both paths observe identical
rows, and neither pays world-model sampling inside the timed region.
"""

from __future__ import annotations

import gc
import resource
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core.policy import ViaConfig, ViaPolicy
from repro.core.vector import CallBatch, MetricsBatch
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import DIRECT, RelayOption
from repro.telephony.call import Call

__all__ = ["MicrobenchConfig", "hot_path_microbench"]


@dataclass(frozen=True, slots=True)
class MicrobenchConfig:
    """Shape of the synthetic assignment workload."""

    n_calls: int = 60_000
    #: Distinct ASes; pairs are drawn uniformly, so fewer ASes means more
    #: calls per (pair, blocked) group per chunk -- the locality knob.
    n_asns: int = 6
    n_bounce: int = 16
    #: Calls per ``assign_many``/``observe_many`` batch.
    chunk: int = 2000
    #: Timed repetitions per path; the fastest run is reported.
    best_of: int = 3
    seed: int = 2016
    frac_direct_blocked: float = 0.05
    #: Trace duration.  One refresh period (< 24 h) keeps the measurement
    #: on the per-call hot path itself: both paths pay the identical,
    #: unvectorised period-refresh cost, so extra refresh events only
    #: dilute the ratio being measured.
    t_span_hours: float = 18.0


def _options(config: MicrobenchConfig) -> list[RelayOption]:
    menu: list[RelayOption] = [DIRECT]
    menu += [RelayOption.bounce(i) for i in range(1, config.n_bounce + 1)]
    menu += [
        RelayOption.transit(1, 2),
        RelayOption.transit(2, 1),
        RelayOption.transit(2, 3),
        RelayOption.transit(3, 2),
    ]
    return menu


def _inter_relay(r1: int, r2: int) -> PathMetrics:
    """Deterministic, id-derived backbone metrics (tomography input)."""
    lo, hi = sorted((r1, r2))
    return PathMetrics(
        rtt_ms=5.0 + 3.0 * ((lo + hi) % 7),
        loss_rate=0.0005 * (1 + (lo * 7 + hi) % 3),
        jitter_ms=0.5 + 0.25 * ((lo * 3 + hi) % 4),
    )


def _make_stream(
    config: MicrobenchConfig,
) -> tuple[list[Call], list[list[RelayOption]], list[PathMetrics]]:
    rng = np.random.default_rng(config.seed)
    menu = _options(config)
    relayed = [o for o in menu if o.is_relayed]
    n = config.n_calls
    srcs = rng.integers(1, config.n_asns + 1, size=n)
    dsts = rng.integers(1, config.n_asns + 1, size=n)
    blocked = rng.random(n) < config.frac_direct_blocked
    dt = rng.random(n) * (2.0 * config.t_span_hours / n)
    t_hours = np.cumsum(dt)
    triples = np.column_stack(
        (
            20.0 + 80.0 * rng.random(n),
            0.002 * rng.random(n),
            1.0 + 4.0 * rng.random(n),
        )
    )
    calls: list[Call] = []
    options_per_call: list[list[RelayOption]] = []
    metrics: list[PathMetrics] = []
    for i in range(n):
        calls.append(
            Call(
                call_id=i + 1,
                t_hours=float(t_hours[i]),
                src_asn=int(srcs[i]),
                dst_asn=int(dsts[i]),
                src_country="US",
                dst_country="US",
                src_user=int(srcs[i]) * 1000,
                dst_user=int(dsts[i]) * 1000 + 1,
                direct_blocked=bool(blocked[i]),
            )
        )
        options_per_call.append(relayed if blocked[i] else menu)
        metrics.append(
            PathMetrics(
                rtt_ms=float(triples[i, 0]),
                loss_rate=float(triples[i, 1]),
                jitter_ms=float(triples[i, 2]),
            )
        )
    return calls, options_per_call, metrics


def _make_policy(config: MicrobenchConfig) -> ViaPolicy:
    from repro.obs.metrics import MetricsRegistry

    return ViaPolicy(
        ViaConfig(seed=config.seed),
        inter_relay=_inter_relay,
        registry=MetricsRegistry(),
    )


def _chunk_bounds(n: int, chunk: int) -> list[tuple[int, int]]:
    return [(i, min(i + chunk, n)) for i in range(0, n, chunk)]


def _run_scalar(config, calls, options_per_call, metrics) -> list[float]:
    """Per-chunk wall times of the natural serial loop (assign + observe)."""
    policy = _make_policy(config)
    assign, observe = policy.assign, policy.observe
    times: list[float] = []
    for i0, i1 in _chunk_bounds(len(calls), config.chunk):
        t0 = perf_counter()
        for i in range(i0, i1):
            option = assign(calls[i], options_per_call[i])
            observe(calls[i], option, metrics[i])
        times.append(perf_counter() - t0)
    return times


def _run_vector(config, calls, options_per_call, metrics_batches) -> list[float]:
    """Per-chunk wall times of the batch interface.

    The :class:`CallBatch` is built inside the timed region (it is part of
    the hot path) and shared between ``assign_many`` and ``observe_many``;
    metric columns arrive prebuilt, mirroring a wire decode that already
    produced columnar rows.
    """
    policy = _make_policy(config)
    assign_many, observe_many = policy.assign_many, policy.observe_many
    times: list[float] = []
    for ci, (i0, i1) in enumerate(_chunk_bounds(len(calls), config.chunk)):
        t0 = perf_counter()
        batch = CallBatch.from_calls(calls[i0:i1])
        choices = assign_many(batch, options_per_call[i0:i1])
        observe_many(batch, choices, metrics_batches[ci])
        times.append(perf_counter() - t0)
    return times


def _summary(chunk_times: list[float], sizes: list[int]) -> dict:
    total_s = float(sum(chunk_times))
    n_calls = sum(sizes)
    per_call_us = 1e6 * np.asarray(chunk_times) / np.asarray(sizes, dtype=float)
    return {
        "total_s": round(total_s, 4),
        "calls_per_sec": round(n_calls / total_s, 1),
        "p50_us_per_call": round(float(np.percentile(per_call_us, 50)), 3),
        "p99_us_per_call": round(float(np.percentile(per_call_us, 99)), 3),
    }


def hot_path_microbench(config: MicrobenchConfig | None = None) -> dict:
    """Measure scalar vs vector hot-path throughput on one workload.

    Each path runs ``best_of`` times against a fresh policy; the fastest
    run (by total wall time) is the one summarised.  The returned dict is
    the ``BENCH_core.json`` payload: per-path calls/sec and per-call
    p50/p99 (microseconds, amortised over chunks), the speedup ratio, and
    the process's peak RSS.
    """
    config = config or MicrobenchConfig()
    calls, options_per_call, metrics = _make_stream(config)
    bounds = _chunk_bounds(len(calls), config.chunk)
    sizes = [i1 - i0 for i0, i1 in bounds]
    metrics_batches = [
        MetricsBatch.from_metrics(metrics[i0:i1]) for i0, i1 in bounds
    ]

    def best(run) -> list[float]:
        # Cyclic GC pauses land arbitrarily and can eat the whole margin
        # of a sub-second run; collect between attempts, not during them.
        attempts = []
        was_enabled = gc.isenabled()
        try:
            for _ in range(config.best_of):
                gc.collect()
                gc.disable()
                try:
                    attempts.append(run())
                finally:
                    if was_enabled:
                        gc.enable()
        finally:
            if was_enabled:
                gc.enable()
        return min(attempts, key=sum)

    scalar_times = best(
        lambda: _run_scalar(config, calls, options_per_call, metrics)
    )
    vector_times = best(
        lambda: _run_vector(config, calls, options_per_call, metrics_batches)
    )
    scalar = _summary(scalar_times, sizes)
    vector = _summary(vector_times, sizes)
    return {
        "workload": {
            "n_calls": config.n_calls,
            "n_asns": config.n_asns,
            "n_options": len(_options(config)),
            "chunk": config.chunk,
            "best_of": config.best_of,
            "seed": config.seed,
            "frac_direct_blocked": config.frac_direct_blocked,
        },
        "scalar": scalar,
        "vector": vector,
        "speedup": round(scalar["total_s"] / vector["total_s"], 2),
        "peak_rss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
    }
