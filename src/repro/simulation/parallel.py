"""Parallel replay engine: fan a grid of replays over a process pool.

The §5 evaluation replays independent (policy, seed, metric) runs that
share nothing but the (read-only) world and trace -- an embarrassingly
parallel map-reduce workload.  This module runs such a grid over
``multiprocessing`` workers while keeping the results **bit-identical**
to a serial run:

* **Picklable task specs.**  Policies are never pickled live (they hold
  closures over the world and mutable learning state); each
  :class:`ReplayTask` carries a :class:`PolicySpec` and the worker
  constructs the policy from it, against its own copy of the world.
* **Deterministic seeding.**  A task with no explicit seed derives one
  from ``(base_seed, task_index)`` through
  ``np.random.SeedSequence(base_seed).spawn(...)`` (see
  :func:`task_seed`), so the seed depends only on the task's position in
  the grid -- never on scheduling order or worker count.
* **Map-reduce merging.**  Workers return full :class:`ReplayResult`\\ s;
  :func:`merged_stats` reduces them into per-group
  :class:`~repro.core.history.RunningStat` aggregates via Chan's
  parallel-Welford ``RunningStat.merge``.

Grids can span several worlds: pass ``scenarios`` (a mapping from task
``scenario`` keys to either a prebuilt ``(world, trace)`` pair or a
picklable :class:`ScenarioSpec` that the worker builds locally).  The
seed-robustness benchmark uses this to replay three independent worlds
concurrently.

Workers prefer the ``fork`` start method where the platform offers it, so
the world and trace transfer by copy-on-write instead of pickling; each
worker process feeds its own ``via_replay_*`` progress gauges when
observability is enabled (see :mod:`repro.obs`).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable, Iterable, Mapping

import numpy as np

from repro.core.history import RunningStat
from repro.core.policy import SelectionPolicy
from repro.core.registry import REGISTRY
from repro.netmodel.world import World, WorldConfig, build_world
from repro.obs import runtime as obs_runtime
from repro.simulation.replay import ReplayResult, replay
from repro.workload.generator import WorkloadConfig, generate_trace
from repro.workload.trace import TraceDataset

if TYPE_CHECKING:  # pragma: no cover
    from repro.telephony.call import CallOutcome
    from repro.telephony.quality import QualityModel

__all__ = [
    "PolicySpec",
    "ScenarioSpec",
    "ReplayTask",
    "TaskResult",
    "task_seed",
    "run_grid",
    "standard_policy_specs",
    "outcome_stat",
    "merged_stats",
]


# ----------------------------------------------------------------------
# Task specs (everything a worker needs, in picklable form)
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PolicySpec:
    """A picklable recipe for one selection policy.

    Live policies close over the world and carry mutable learning state,
    so they cannot cross a process boundary; a spec can.  ``kind`` is a
    :data:`repro.core.registry.REGISTRY` policy name; ``build`` resolves
    it through the registry inside the worker, against the worker's
    world, using exactly the same factories as direct construction -- a
    policy built from a spec is bit-identical to one built directly, and
    an unknown kind fails with the registry's did-you-mean listing.
    """

    kind: str
    metric: str = "rtt_ms"
    seed: int = 42
    #: Extra keyword overrides for the underlying factory, as a sorted
    #: tuple of pairs so the spec stays hashable and picklable.
    overrides: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def default(cls) -> "PolicySpec":
        """The BGP default-path baseline (no knobs)."""
        return cls(kind="default")

    @classmethod
    def oracle(cls, metric: str = "rtt_ms", **overrides: Any) -> "PolicySpec":
        """The §3.2 foresight baseline for ``metric``."""
        return cls(kind="oracle", metric=metric, overrides=_freeze(overrides))

    @classmethod
    def via(
        cls, metric: str = "rtt_ms", *, seed: int = 42, **overrides: Any
    ) -> "PolicySpec":
        """The full Algorithm-1 VIA configuration."""
        return cls(kind="via", metric=metric, seed=seed, overrides=_freeze(overrides))

    @classmethod
    def strawman_prediction(
        cls, metric: str = "rtt_ms", *, seed: int = 43, **overrides: Any
    ) -> "PolicySpec":
        """Strawman I (§4.2): pure prediction."""
        return cls(
            kind="strawman-prediction",
            metric=metric,
            seed=seed,
            overrides=_freeze(overrides),
        )

    @classmethod
    def strawman_exploration(
        cls, metric: str = "rtt_ms", *, seed: int = 44, **overrides: Any
    ) -> "PolicySpec":
        """Strawman II (§4.2): pure ε-greedy exploration."""
        return cls(
            kind="strawman-exploration",
            metric=metric,
            seed=seed,
            overrides=_freeze(overrides),
        )

    @classmethod
    def multipath(
        cls, metric: str = "rtt_ms", *, seed: int = 42, **overrides: Any
    ) -> "PolicySpec":
        """Bandit over two-path :class:`~repro.core.multipath.PathSet` arms."""
        return cls(
            kind="multipath-ucb", metric=metric, seed=seed, overrides=_freeze(overrides)
        )

    def build(self, world: World) -> SelectionPolicy:
        """Construct the live policy this spec describes, on ``world``.

        Resolution goes through :data:`repro.core.registry.REGISTRY`, so
        every registered policy -- including wrappers like ``cached-via``
        and the multipath family -- is a valid ``kind``.
        """
        return REGISTRY.build(
            self.kind, world, metric=self.metric, seed=self.seed, **dict(self.overrides)
        )


def _freeze(overrides: Mapping[str, Any]) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted(overrides.items()))


def standard_policy_specs(
    metric: str,
    *,
    seed: int = 42,
    include_strawmen: bool = True,
) -> dict[str, PolicySpec]:
    """The Figure-12 strategy suite as specs, keyed like ``standard_policies``.

    Seeds follow the same convention as
    :func:`repro.simulation.experiment.standard_policies` (VIA at
    ``seed``, strawmen at ``seed + 1`` / ``seed + 2``), so a parallel run
    of these specs reproduces the serial suite exactly.
    """
    specs: dict[str, PolicySpec] = {
        "default": PolicySpec.default(),
        "oracle": PolicySpec.oracle(metric),
        "via": PolicySpec.via(metric, seed=seed),
    }
    if include_strawmen:
        specs["strawman-prediction"] = PolicySpec.strawman_prediction(
            metric, seed=seed + 1
        )
        specs["strawman-exploration"] = PolicySpec.strawman_exploration(
            metric, seed=seed + 2
        )
    return specs


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """A picklable recipe for one (world, trace) pair.

    Workers build the scenario locally (cached per worker process), which
    keeps multi-world grids -- e.g. the seed-robustness sweep -- cheap to
    ship even under the ``spawn`` start method.
    """

    world: WorldConfig
    workload: WorkloadConfig
    #: Trace length; defaults to the world's ``n_days``.
    n_days: int | None = None

    def build(self) -> tuple[World, TraceDataset]:
        world = build_world(self.world)
        trace = generate_trace(
            world.topology,
            self.workload,
            n_days=self.n_days if self.n_days is not None else self.world.n_days,
        )
        return world, trace


@dataclass(frozen=True, slots=True)
class ReplayTask:
    """One cell of a replay grid: a policy spec plus its replay seed.

    ``seed=None`` derives the replay seed from the grid's ``base_seed``
    and the task's index (see :func:`task_seed`).  ``scenario`` selects a
    (world, trace) pair from the grid's ``scenarios`` mapping; ``None``
    uses the shared world/trace passed to :func:`run_grid` directly.
    """

    policy: PolicySpec
    seed: int | None = None
    metric: str = "rtt_ms"
    label: str | None = None
    scenario: Hashable = None


@dataclass(slots=True)
class TaskResult:
    """One grid cell's replay, with enough identity to reduce over."""

    index: int
    task: ReplayTask
    #: The resolved replay seed actually used (explicit or derived).
    seed: int
    result: ReplayResult

    @property
    def label(self) -> str:
        return self.task.label if self.task.label is not None else (
            f"{self.result.policy_name}#{self.index}"
        )


# ----------------------------------------------------------------------
# Deterministic per-task seeding
# ----------------------------------------------------------------------


def task_seed(base_seed: int, index: int) -> int:
    """The replay seed of grid cell ``index`` under ``base_seed``.

    Derived through ``np.random.SeedSequence(base_seed).spawn(...)``:
    child ``index``'s spawn key depends only on ``(base_seed, index)``,
    so the mapping is stable across runs, worker counts, and scheduling
    order -- the determinism contract that makes ``workers=N``
    bit-identical to ``workers=1``.
    """
    if index < 0:
        raise ValueError(f"task index must be >= 0: {index}")
    child = np.random.SeedSequence(base_seed).spawn(index + 1)[index]
    return int(child.generate_state(1, dtype=np.uint64)[0])


def _resolve_seeds(tasks: list[ReplayTask], base_seed: int) -> list[int]:
    children = np.random.SeedSequence(base_seed).spawn(len(tasks))
    return [
        task.seed
        if task.seed is not None
        else int(children[i].generate_state(1, dtype=np.uint64)[0])
        for i, task in enumerate(tasks)
    ]


# ----------------------------------------------------------------------
# Worker plumbing
# ----------------------------------------------------------------------

#: Per-worker-process context, set once by the pool initializer.
_CTX: dict[str, Any] | None = None


def _make_ctx(
    world: World | None,
    trace: TraceDataset | None,
    scenarios: Mapping[Hashable, Any],
    quality: "QualityModel | None",
    batch_calls: int = 1,
) -> dict[str, Any]:
    return {
        "world": world,
        "trace": trace,
        "scenarios": dict(scenarios),
        "scenes": {},
        "quality": quality,
        "batch_calls": batch_calls,
    }


def _init_worker(
    world: World | None,
    trace: TraceDataset | None,
    scenarios: Mapping[Hashable, Any],
    quality: "QualityModel | None",
    obs_enabled: bool,
    batch_calls: int = 1,
) -> None:
    global _CTX
    _CTX = _make_ctx(world, trace, scenarios, quality, batch_calls)
    if obs_enabled:
        # Each worker feeds its own process-local via_replay_* gauges.
        obs_runtime.enable()


def _scene(ctx: dict[str, Any], key: Hashable) -> tuple[World, TraceDataset]:
    """The (world, trace) a task runs against, built/cached per process."""
    if key is None:
        if ctx["world"] is None or ctx["trace"] is None:
            raise ValueError(
                "task has scenario=None but run_grid was given no shared "
                "world/trace"
            )
        return ctx["world"], ctx["trace"]
    built = ctx["scenes"].get(key)
    if built is None:
        if key not in ctx["scenarios"]:
            raise KeyError(f"unknown scenario key: {key!r}")
        spec = ctx["scenarios"][key]
        if isinstance(spec, ScenarioSpec):
            built = spec.build()
        else:
            world, trace = spec
            built = (world, trace)
        ctx["scenes"][key] = built
    return built


def _execute(
    ctx: dict[str, Any], index: int, task: ReplayTask, seed: int
) -> TaskResult:
    world, trace = _scene(ctx, task.scenario)
    policy = task.policy.build(world)
    result = replay(
        world,
        trace,
        policy,
        seed=seed,
        quality=ctx["quality"],
        batch_calls=ctx.get("batch_calls", 1),
    )
    return TaskResult(index=index, task=task, seed=seed, result=result)


def _pool_task(item: tuple[int, ReplayTask, int]) -> TaskResult:
    assert _CTX is not None, "worker used before initialization"
    index, task, seed = item
    return _execute(_CTX, index, task, seed)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------


def run_grid(
    tasks: Iterable[ReplayTask],
    *,
    world: World | None = None,
    trace: TraceDataset | None = None,
    scenarios: Mapping[Hashable, Any] | None = None,
    base_seed: int = 0,
    workers: int = 1,
    quality: "QualityModel | None" = None,
    batch_calls: int = 1,
) -> list[TaskResult]:
    """Replay every task in the grid; results come back in task order.

    ``workers=1`` runs the grid serially in-process (the baseline);
    ``workers>1`` fans out over a process pool.  Both paths execute the
    exact same per-task code with the exact same derived seeds, so their
    results are bit-identical -- verified by
    ``tests/test_parallel.py::test_parallel_matches_serial_exactly``.

    ``scenarios`` maps task ``scenario`` keys to either a prebuilt
    ``(world, trace)`` pair or a :class:`ScenarioSpec`; tasks with
    ``scenario=None`` use the shared ``world``/``trace`` arguments.
    ``batch_calls`` is forwarded to every :func:`replay` call, so grids can
    run each cell through the vectorised batch hot path (see
    ``docs/performance.md``); the parallel/serial equivalence holds for
    any fixed value.
    """
    tasks = list(tasks)
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    if batch_calls < 1:
        raise ValueError(f"batch_calls must be >= 1: {batch_calls}")
    if (world is None) != (trace is None):
        raise ValueError("world and trace must be given together")
    if not tasks:
        return []
    scenarios = scenarios or {}
    missing = {
        task.scenario
        for task in tasks
        if task.scenario is not None and task.scenario not in scenarios
    }
    if missing:
        raise KeyError(f"tasks reference unknown scenario keys: {sorted(map(repr, missing))}")
    if any(task.scenario is None for task in tasks) and world is None:
        raise ValueError(
            "grid has tasks with scenario=None but no shared world/trace"
        )
    seeds = _resolve_seeds(tasks, base_seed)
    items = [(i, task, seeds[i]) for i, task in enumerate(tasks)]

    if workers == 1 or len(tasks) == 1:
        ctx = _make_ctx(world, trace, scenarios, quality, batch_calls)
        return [_execute(ctx, i, task, seed) for (i, task, seed) in items]

    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    mp_ctx = multiprocessing.get_context(method)
    n_workers = min(workers, len(tasks))
    with mp_ctx.Pool(
        processes=n_workers,
        initializer=_init_worker,
        initargs=(world, trace, scenarios, quality, obs_runtime.enabled, batch_calls),
    ) as pool:
        results = pool.map(_pool_task, items, chunksize=1)
    results.sort(key=lambda r: r.index)
    return results


# ----------------------------------------------------------------------
# Map-reduce result merging
# ----------------------------------------------------------------------


def outcome_stat(outcomes: Iterable["CallOutcome"]) -> RunningStat:
    """Single-pass :class:`RunningStat` over one shard's call outcomes."""
    stat = RunningStat()
    for outcome in outcomes:
        stat.push(outcome.metrics)
    return stat


def merged_stats(
    results: Iterable[TaskResult],
    *,
    key=None,
) -> dict[Any, RunningStat]:
    """Reduce grid results to per-group aggregates (Chan's merge).

    ``key`` maps a :class:`TaskResult` to its reduction group and
    defaults to the replayed policy's name, so a (policy x seed) grid
    collapses into one :class:`RunningStat` per policy, exactly as if
    every group's calls had been pushed through one stat serially.
    Groups appear in first-seen task order.
    """
    if key is None:
        key = lambda r: r.result.policy_name  # noqa: E731
    merged: dict[Any, RunningStat] = {}
    for result in results:
        merged.setdefault(key(result), RunningStat()).merge(
            outcome_stat(result.result.outcomes)
        )
    return merged
