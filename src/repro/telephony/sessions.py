"""Call sessions: bridge call-average metrics back to packet-level traces.

The replay world produces per-call *average* (RTT, loss, jitter) -- the
same aggregates the paper's clients report.  For packet-level studies
(the §2.2 validation, trace-MOS scoring of policies) we need the inverse
of :func:`repro.telephony.rtp.trace_metrics`: given a call's averages,
synthesise a plausible RTP packet trace whose measured averages match.

The mapping is calibrated so the round trip holds: ``trace_metrics(
trace_for_call(m)) ≈ m`` (see ``tests/test_sessions.py``).
"""

from __future__ import annotations

import numpy as np

from repro.netmodel.metrics import PathMetrics
from repro.telephony.codec import DEFAULT_CODEC, CodecSpec
from repro.telephony.rtp import (
    GilbertElliottLoss,
    PacketTrace,
    simulate_rtp_stream,
    trace_mos,
)

__all__ = ["trace_for_call", "call_trace_mos"]

#: RFC 3550's EWMA jitter estimate of our AR(1)+|Laplace| delay process
#: comes out below the Laplace scale; this factor (measured empirically
#: over the calibration sweep) maps a target jitter back to the scale.
_JITTER_SCALE_FACTOR = 2.75


def trace_for_call(
    metrics: PathMetrics,
    duration_s: float,
    rng: np.random.Generator,
    *,
    codec: CodecSpec = DEFAULT_CODEC,
    burstiness: float = 0.35,
) -> PacketTrace:
    """Synthesise an RTP packet trace matching a call's average metrics.

    One-way delay is RTT/2; loss follows a Gilbert-Elliott model with the
    given burstiness around the call's average rate; the jitter process is
    scaled so the RFC 3550 estimator lands near the call's reported
    jitter.  Delay spikes are disabled -- the call averages already embed
    whatever spikes occurred.
    """
    if duration_s <= 0.0:
        raise ValueError("duration_s must be > 0")
    loss = GilbertElliottLoss.from_average(
        min(metrics.loss_rate, 0.9), burstiness=burstiness
    )
    return simulate_rtp_stream(
        duration_s,
        base_owd_ms=metrics.rtt_ms / 2.0,
        jitter_scale_ms=metrics.jitter_ms * _JITTER_SCALE_FACTOR,
        loss=loss,
        rng=rng,
        codec=codec,
        delay_spike_rate_per_min=0.0,
    )


def call_trace_mos(
    metrics: PathMetrics,
    duration_s: float,
    rng: np.random.Generator,
    *,
    codec: CodecSpec = DEFAULT_CODEC,
) -> float:
    """Packet-trace MOS for a call described by its average metrics.

    This is the fine-grained quality score the paper's proprietary
    calculator would produce -- windowed and burst-sensitive, so it
    punishes calls whose loss concentrates in bursts more than the
    averages alone suggest.
    """
    trace = trace_for_call(metrics, duration_s, rng, codec=codec)
    return trace_mos(trace, codec)
