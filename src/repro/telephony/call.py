"""Call records: the unit of the trace and of every experiment.

A :class:`Call` is the *intent* -- who calls whom, when, on what kind of
client.  A :class:`CallOutcome` is the realised result after the replay
assigned a relaying option and the world produced network metrics (plus an
optional user rating).  Policies see only outcomes, never ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import RelayOption

__all__ = ["Call", "CallOutcome"]


@dataclass(frozen=True, slots=True)
class Call:
    """One call intent from the workload generator.

    ``t_hours`` is absolute simulation time in hours from the start of the
    trace.  ``src_prefix`` / ``dst_prefix`` index sub-AS prefixes (used by
    the spatial-granularity study); wireless flags mark last-hop type.
    """

    call_id: int
    t_hours: float
    src_asn: int
    dst_asn: int
    src_country: str
    dst_country: str
    src_user: int
    dst_user: int
    duration_s: float = 180.0
    src_prefix: int = 0
    dst_prefix: int = 0
    src_wireless: bool = False
    dst_wireless: bool = False
    #: NAT/firewall pairs cannot establish a direct connection and *must*
    #: relay -- the reason today's relays exist at all (§2.1 of the paper).
    direct_blocked: bool = False

    def __post_init__(self) -> None:
        if self.t_hours < 0.0:
            raise ValueError(f"t_hours must be >= 0: {self.t_hours}")
        if self.duration_s <= 0.0:
            raise ValueError(f"duration_s must be > 0: {self.duration_s}")

    @property
    def day(self) -> int:
        return int(self.t_hours // 24.0)

    @property
    def international(self) -> bool:
        return self.src_country != self.dst_country

    @property
    def inter_as(self) -> bool:
        return self.src_asn != self.dst_asn

    @property
    def as_pair(self) -> tuple[int, int]:
        """Unordered AS pair (canonical low-high order)."""
        if self.src_asn <= self.dst_asn:
            return (self.src_asn, self.dst_asn)
        return (self.dst_asn, self.src_asn)

    @property
    def any_wireless(self) -> bool:
        return self.src_wireless or self.dst_wireless

    def to_dict(self) -> dict[str, Any]:
        return {
            "call_id": self.call_id,
            "t_hours": self.t_hours,
            "src_asn": self.src_asn,
            "dst_asn": self.dst_asn,
            "src_country": self.src_country,
            "dst_country": self.dst_country,
            "src_user": self.src_user,
            "dst_user": self.dst_user,
            "duration_s": self.duration_s,
            "src_prefix": self.src_prefix,
            "dst_prefix": self.dst_prefix,
            "src_wireless": self.src_wireless,
            "dst_wireless": self.dst_wireless,
            "direct_blocked": self.direct_blocked,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Call":
        return cls(**data)


@dataclass(frozen=True, slots=True)
class CallOutcome:
    """A completed call: intent + relaying decision + realised metrics."""

    call: Call
    option: RelayOption
    metrics: PathMetrics
    rating: int | None = None

    def __post_init__(self) -> None:
        if self.rating is not None and not 1 <= self.rating <= 5:
            raise ValueError(f"rating must be in 1..5: {self.rating}")

    @property
    def poor_rating(self) -> bool:
        """True when a user rated the call 1 or 2 (the paper's PCR rule)."""
        return self.rating is not None and self.rating <= 2

    def with_rating(self, rating: int) -> "CallOutcome":
        return replace(self, rating=rating)
