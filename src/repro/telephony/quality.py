"""Call-quality models: E-model MOS, Poor Call Rate, and rating sampling.

Implements the analytic VoIP quality model of Cole & Rosenbluth, "Voice
over IP Performance Monitoring" (CCR 2001) -- the model the paper uses in
§2.2 -- which simplifies the ITU-T G.107 E-model to

    R = 94.2 - Id(d) - Ie(e)
    Id = 0.024 d + 0.11 (d - 177.3) H(d - 177.3)
    Ie = gamma1 + gamma2 ln(1 + gamma3 e)

with one-way delay ``d`` (ms) and effective loss ``e`` (fraction).  Jitter
enters through the de-jitter buffer: buffered packets add delay, late
packets beyond the buffer count as lost.

On top of MOS we define the probability that a user labels a call "poor"
(rating 1 or 2), calibrated so that the PCR-vs-metric curves look like
Figure 1: monotone in each metric across its whole range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.netmodel.metrics import PathMetrics
from repro.telephony.codec import DEFAULT_CODEC, CodecSpec

__all__ = [
    "QualityModel",
    "r_factor",
    "mos_from_r_factor",
    "mos_from_network",
    "poor_call_probability",
    "sample_rating",
]

#: Maximum R-factor in the Cole-Rosenbluth simplification (default G.107
#: parameters with no other impairments).
_R_MAX = 94.2

#: Delay knee of the Id curve (ms, one-way mouth-to-ear).
_DELAY_KNEE_MS = 177.3


def _jitter_buffer_ms(jitter_ms: float, multiplier: float = 2.0, floor_ms: float = 10.0) -> float:
    """Adaptive de-jitter buffer sizing: a multiple of observed jitter."""
    return max(floor_ms, multiplier * jitter_ms)


def _late_discard_fraction(jitter_ms: float, buffer_ms: float) -> float:
    """Fraction of packets arriving beyond the de-jitter buffer.

    Models inter-arrival delay variation as Laplace-like with scale equal
    to the RFC 3550 jitter estimate, so the tail beyond the buffer decays
    exponentially.  With the default buffer at 2x jitter this yields a few
    permille of discards under normal jitter, ramping up sharply when
    jitter spikes -- matching the paper's observation that jitter hurts
    quality across its whole range.
    """
    if jitter_ms <= 0.0:
        return 0.0
    return 0.5 * math.exp(-buffer_ms / jitter_ms)


def r_factor(
    rtt_ms: float,
    loss_rate: float,
    jitter_ms: float,
    codec: CodecSpec = DEFAULT_CODEC,
) -> float:
    """Transmission rating factor R for one call's average network metrics.

    One-way mouth-to-ear delay = RTT/2 + codec delay + de-jitter buffer.
    Effective loss = network loss + late discards at the jitter buffer.
    """
    if rtt_ms < 0 or jitter_ms < 0 or not 0.0 <= loss_rate <= 1.0:
        raise ValueError("invalid network metrics")
    buffer_ms = _jitter_buffer_ms(jitter_ms)
    one_way_delay = rtt_ms / 2.0 + codec.codec_delay_ms + buffer_ms
    id_impairment = 0.024 * one_way_delay
    if one_way_delay > _DELAY_KNEE_MS:
        id_impairment += 0.11 * (one_way_delay - _DELAY_KNEE_MS)
    discard = _late_discard_fraction(jitter_ms, buffer_ms)
    effective_loss = loss_rate + (1.0 - loss_rate) * discard
    ie_impairment = codec.ie_at_loss(effective_loss)
    return _R_MAX - id_impairment - ie_impairment


def mos_from_r_factor(r: float) -> float:
    """Map an R-factor to MOS via the standard G.107 cubic."""
    if r <= 0.0:
        return 1.0
    if r >= 100.0:
        return 4.5
    mos = 1.0 + 0.035 * r + 7.0e-6 * r * (r - 60.0) * (100.0 - r)
    # The cubic dips marginally below 1 for tiny positive R; clamp to the
    # MOS scale.
    return min(4.5, max(1.0, mos))


def mos_from_network(metrics: PathMetrics, codec: CodecSpec = DEFAULT_CODEC) -> float:
    """MOS for one call's average (RTT, loss, jitter)."""
    return mos_from_r_factor(
        r_factor(metrics.rtt_ms, metrics.loss_rate, metrics.jitter_ms, codec)
    )


def poor_call_probability(
    metrics: PathMetrics,
    codec: CodecSpec = DEFAULT_CODEC,
    *,
    mos_midpoint: float = 2.9,
    mos_scale: float = 0.35,
    baseline: float = 0.04,
) -> float:
    """Probability that a user rates this call 1 or 2.

    A logistic link from MOS to dissatisfaction, plus a small baseline for
    non-network causes (content, device, mood) so that even perfect
    networks see some poor ratings -- as in any real rating dataset.
    """
    mos = mos_from_network(metrics, codec)
    network_term = 1.0 / (1.0 + math.exp((mos - mos_midpoint) / mos_scale))
    return min(1.0, baseline + (1.0 - baseline) * network_term)


def sample_rating(
    metrics: PathMetrics,
    rng: np.random.Generator,
    codec: CodecSpec = DEFAULT_CODEC,
) -> int:
    """Draw a 5-point user rating for one call.

    Poor calls (probability from :func:`poor_call_probability`) rate 1-2;
    the rest rate 3-5 with weights tilted by MOS.
    """
    p_poor = poor_call_probability(metrics, codec)
    if rng.random() < p_poor:
        return int(rng.choice((1, 2), p=(0.45, 0.55)))
    mos = mos_from_network(metrics, codec)
    # Tilt 3/4/5 towards 5 when MOS is high, towards 3 when marginal.
    tilt = min(1.0, max(0.0, (mos - 2.5) / 2.0))
    weights = np.array([1.0 - 0.8 * tilt, 1.0, 0.4 + 1.6 * tilt])
    weights /= weights.sum()
    return int(rng.choice((3, 4, 5), p=weights))


@dataclass(frozen=True, slots=True)
class QualityModel:
    """Bundles a codec with the rating model; convenience for simulators."""

    codec: CodecSpec = DEFAULT_CODEC
    rating_fraction: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.rating_fraction <= 1.0:
            raise ValueError(f"rating_fraction must be in [0, 1]: {self.rating_fraction}")

    def mos(self, metrics: PathMetrics) -> float:
        return mos_from_network(metrics, self.codec)

    def maybe_rate(self, metrics: PathMetrics, rng: np.random.Generator) -> int | None:
        """Rate the call with probability ``rating_fraction`` (as in Skype,
        only a random subset of calls is rated)."""
        if rng.random() >= self.rating_fraction:
            return None
        return sample_rating(metrics, rng, self.codec)
