"""RTP-level packet trace simulation and metric extraction.

The paper's clients compute per-call RTT / loss / jitter "in accordance
with the RTP specifications [RFC 3550]", and §2.2 validates the
average-metric thresholds against a proprietary MOS calculator run on full
packet traces (send/receive timestamps + loss).  This module provides the
equivalent machinery:

* :func:`simulate_rtp_stream` generates a packet trace for a call given
  target network conditions (base delay, jitter scale, loss with
  Gilbert-Elliott burstiness),
* :func:`rfc3550_jitter` implements the interarrival-jitter estimator of
  RFC 3550 §6.4.1 (``J += (|D(i-1, i)| - J) / 16``),
* :func:`trace_metrics` reduces a trace to the call-average
  :class:`~repro.netmodel.metrics.PathMetrics` triple, and
* :func:`trace_mos` computes a windowed, burst-sensitive MOS from the
  trace (the stand-in for the proprietary calculator).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netmodel.metrics import PathMetrics
from repro.telephony.codec import DEFAULT_CODEC, CodecSpec
from repro.telephony.quality import mos_from_network

__all__ = [
    "GilbertElliottLoss",
    "PacketTrace",
    "simulate_rtp_stream",
    "rfc3550_jitter",
    "trace_metrics",
    "trace_mos",
]


@dataclass(frozen=True, slots=True)
class GilbertElliottLoss:
    """Two-state Gilbert-Elliott packet loss model.

    ``p_gb`` / ``p_bg`` are per-packet transition probabilities between the
    Good and Bad states; packets drop with probability ``loss_good`` /
    ``loss_bad`` in each state.  Use :meth:`from_average` to derive
    parameters hitting a target long-run loss rate with a given burstiness.
    """

    p_gb: float
    p_bg: float
    loss_good: float
    loss_bad: float

    def __post_init__(self) -> None:
        for name in ("p_gb", "p_bg", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability: {value}")
        if self.p_gb + self.p_bg <= 0.0:
            raise ValueError("degenerate chain: p_gb + p_bg must be > 0")

    @classmethod
    def from_average(
        cls,
        loss_rate: float,
        *,
        burstiness: float = 0.3,
        mean_burst_packets: float = 8.0,
        loss_bad: float = 0.5,
    ) -> "GilbertElliottLoss":
        """Build a model with long-run average ``loss_rate``.

        ``burstiness`` in [0, 1] splits the loss budget between a random
        (Good-state) component and a bursty (Bad-state) component.
        """
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1): {loss_rate}")
        if not 0.0 <= burstiness <= 1.0:
            raise ValueError(f"burstiness must be in [0, 1]: {burstiness}")
        if mean_burst_packets < 1.0:
            raise ValueError("mean_burst_packets must be >= 1")
        p_bg = 1.0 / mean_burst_packets
        # Long-run fraction of time in Bad must satisfy:
        #   pi_bad * loss_bad = burstiness * loss_rate
        pi_bad = min(0.9, burstiness * loss_rate / loss_bad)
        # pi_bad = p_gb / (p_gb + p_bg)  =>  p_gb = pi_bad * p_bg / (1 - pi_bad)
        p_gb = pi_bad * p_bg / (1.0 - pi_bad)
        # Good-state loss covers the remaining budget.
        pi_good = 1.0 - pi_bad
        loss_good = 0.0 if pi_good <= 0.0 else (1.0 - burstiness) * loss_rate / pi_good
        return cls(p_gb=min(p_gb, 1.0), p_bg=p_bg, loss_good=min(loss_good, 1.0), loss_bad=loss_bad)

    def average_loss(self) -> float:
        """The long-run average loss rate of this model."""
        pi_bad = self.p_gb / (self.p_gb + self.p_bg)
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def sample_mask(self, n_packets: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean array: True where the packet is LOST."""
        if n_packets < 0:
            raise ValueError("n_packets must be >= 0")
        lost = np.zeros(n_packets, dtype=bool)
        pi_bad = self.p_gb / (self.p_gb + self.p_bg)
        in_bad = bool(rng.random() < pi_bad)
        for i in range(n_packets):
            drop_p = self.loss_bad if in_bad else self.loss_good
            lost[i] = rng.random() < drop_p
            flip_p = self.p_bg if in_bad else self.p_gb
            if rng.random() < flip_p:
                in_bad = not in_bad
        return lost


@dataclass(frozen=True, slots=True)
class PacketTrace:
    """One direction of a call at packet granularity.

    ``send_ms`` are RTP send timestamps; ``recv_ms`` are arrival times with
    ``NaN`` for lost packets.  ``rtt_ms`` is the call's signalled RTT
    (from RTCP), carried alongside since one-way traces cannot express it.
    """

    send_ms: np.ndarray
    recv_ms: np.ndarray
    rtt_ms: float

    def __post_init__(self) -> None:
        if self.send_ms.shape != self.recv_ms.shape:
            raise ValueError("send and recv arrays must align")
        if self.rtt_ms < 0.0:
            raise ValueError("rtt_ms must be >= 0")

    @property
    def n_packets(self) -> int:
        return int(self.send_ms.size)

    @property
    def lost_mask(self) -> np.ndarray:
        return np.isnan(self.recv_ms)

    @property
    def loss_rate(self) -> float:
        if self.n_packets == 0:
            return 0.0
        return float(self.lost_mask.mean())

    @property
    def duration_ms(self) -> float:
        if self.n_packets == 0:
            return 0.0
        return float(self.send_ms[-1] - self.send_ms[0])


def simulate_rtp_stream(
    duration_s: float,
    *,
    base_owd_ms: float,
    jitter_scale_ms: float,
    loss: GilbertElliottLoss | float,
    rng: np.random.Generator,
    codec: CodecSpec = DEFAULT_CODEC,
    delay_spike_rate_per_min: float = 1.0,
    delay_spike_ms: float = 60.0,
) -> PacketTrace:
    """Simulate one direction of an RTP audio stream.

    Per-packet one-way delay is ``base_owd_ms`` plus an AR(1)-correlated
    Laplace jitter term (scale ``jitter_scale_ms``) plus occasional delay
    spikes (queue build-ups).  Loss follows the given Gilbert-Elliott
    model (or a plain average rate).
    """
    if duration_s <= 0.0:
        raise ValueError("duration_s must be > 0")
    if base_owd_ms < 0.0 or jitter_scale_ms < 0.0:
        raise ValueError("delays must be non-negative")
    if isinstance(loss, float | int):
        loss = GilbertElliottLoss.from_average(float(loss))

    n_packets = max(2, int(duration_s * codec.packets_per_second))
    send_ms = np.arange(n_packets, dtype=float) * codec.frame_ms

    # AR(1) correlated jitter: successive packets share queue state.
    rho = 0.6
    innovations = rng.laplace(0.0, jitter_scale_ms * (1.0 - rho), size=n_packets)
    jitter = np.empty(n_packets)
    acc = 0.0
    for i in range(n_packets):
        acc = rho * acc + innovations[i]
        jitter[i] = acc

    delay = base_owd_ms + np.abs(jitter)
    # Occasional delay spikes (bufferbloat events) decaying over ~10 packets.
    n_spikes = rng.poisson(delay_spike_rate_per_min * duration_s / 60.0)
    for _ in range(int(n_spikes)):
        at = int(rng.integers(0, n_packets))
        width = int(rng.integers(5, 20))
        magnitude = float(rng.exponential(delay_spike_ms))
        end = min(n_packets, at + width)
        delay[at:end] += magnitude * np.exp(-np.arange(end - at) / max(1.0, width / 3.0))

    recv_ms = send_ms + delay
    lost = loss.sample_mask(n_packets, rng)
    recv_ms[lost] = np.nan
    return PacketTrace(send_ms=send_ms, recv_ms=recv_ms, rtt_ms=2.0 * base_owd_ms)


def rfc3550_jitter(trace: PacketTrace) -> float:
    """Final RFC 3550 §6.4.1 interarrival-jitter estimate in ms.

    ``D(i, j) = (Rj - Ri) - (Sj - Si)``; ``J += (|D| - J) / 16`` over
    consecutive *received* packets.
    """
    received = ~trace.lost_mask
    send = trace.send_ms[received]
    recv = trace.recv_ms[received]
    if send.size < 2:
        return 0.0
    transit = recv - send
    d = np.abs(np.diff(transit))
    jitter = 0.0
    for value in d:
        jitter += (float(value) - jitter) / 16.0
    return jitter


def trace_metrics(trace: PacketTrace) -> PathMetrics:
    """Reduce a packet trace to the call-average metric triple.

    This mirrors what the paper's clients report: average values over the
    whole call, with jitter from the RFC 3550 estimator.
    """
    return PathMetrics(
        rtt_ms=trace.rtt_ms,
        loss_rate=trace.loss_rate,
        jitter_ms=rfc3550_jitter(trace),
    )


def trace_mos(
    trace: PacketTrace,
    codec: CodecSpec = DEFAULT_CODEC,
    window_s: float = 10.0,
) -> float:
    """Burst-sensitive MOS computed from the full packet trace.

    The proprietary calculator in the paper sees transient loss bursts and
    delay spikes that call averages smooth away.  We approximate it by
    scoring each ``window_s`` slice with the E-model on that window's own
    loss/jitter, then aggregating with a *peak-end-style perceptual
    weighting*: listeners judge a call disproportionately by its worst
    stretches, so bad windows get weight ``(5.5 - MOS)`` in the average.
    A call with one terrible window therefore scores worse than its
    call-average metrics suggest (plain averaging would not: the E-model's
    loss impairment is concave, so Jensen's inequality runs the other way).
    """
    if window_s <= 0.0:
        raise ValueError("window_s must be > 0")
    n = trace.n_packets
    if n == 0:
        return 1.0
    window_packets = max(2, int(window_s * codec.packets_per_second))
    scores = []
    for start in range(0, n, window_packets):
        stop = min(n, start + window_packets)
        if stop - start < 2:
            continue
        sub = PacketTrace(
            send_ms=trace.send_ms[start:stop],
            recv_ms=trace.recv_ms[start:stop],
            rtt_ms=trace.rtt_ms,
        )
        window_metrics = PathMetrics(
            rtt_ms=trace.rtt_ms,
            loss_rate=sub.loss_rate,
            jitter_ms=rfc3550_jitter(sub),
        )
        scores.append(mos_from_network(window_metrics, codec))
    if not scores:
        return mos_from_network(trace_metrics(trace), codec)
    values = np.asarray(scores)
    weights = 5.5 - values  # worse windows weigh more (peak-end rule)
    return float(np.sum(values * weights) / np.sum(weights))
