"""Codec descriptions used by the quality models and the RTP simulator.

Each codec carries the E-model equipment-impairment parameters
``(ie_base, ie_gamma2, ie_gamma3)`` of the Cole-Rosenbluth fit
``Ie = ie_base + ie_gamma2 * ln(1 + ie_gamma3 * e)`` where ``e`` is the
effective packet-loss fraction, plus packetisation facts for the packet
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CodecSpec", "G711", "G729", "SILK_WB", "OPUS_WB", "DEFAULT_CODEC"]


@dataclass(frozen=True, slots=True)
class CodecSpec:
    """Static properties of an audio codec as the E-model sees it."""

    name: str
    bitrate_kbps: float
    frame_ms: float
    #: Encoder+decoder algorithmic/lookahead delay (ms, one way).
    codec_delay_ms: float
    #: Equipment impairment at zero loss.
    ie_base: float
    #: Loss sensitivity: Ie = ie_base + ie_gamma2 * ln(1 + ie_gamma3 * e).
    ie_gamma2: float
    ie_gamma3: float

    def __post_init__(self) -> None:
        if self.bitrate_kbps <= 0 or self.frame_ms <= 0:
            raise ValueError("bitrate and frame size must be positive")
        if self.codec_delay_ms < 0:
            raise ValueError("codec delay must be non-negative")

    @property
    def packets_per_second(self) -> float:
        """Packet rate assuming one frame per RTP packet."""
        return 1000.0 / self.frame_ms

    def ie_at_loss(self, effective_loss: float) -> float:
        """Equipment impairment Ie at an effective loss fraction."""
        import math

        if effective_loss < 0.0:
            raise ValueError(f"loss must be >= 0: {effective_loss}")
        return self.ie_base + self.ie_gamma2 * math.log1p(self.ie_gamma3 * effective_loss)


#: G.711 with packet-loss concealment -- the Cole-Rosenbluth reference fit
#: (Ie = 0 + 30 ln(1 + 15 e)).
G711 = CodecSpec(
    name="G.711+PLC",
    bitrate_kbps=64.0,
    frame_ms=20.0,
    codec_delay_ms=0.25,
    ie_base=0.0,
    ie_gamma2=30.0,
    ie_gamma3=15.0,
)

#: G.729a+VAD per Cole-Rosenbluth: Ie = 11 + 40 ln(1 + 10 e).
G729 = CodecSpec(
    name="G.729a+VAD",
    bitrate_kbps=8.0,
    frame_ms=20.0,
    codec_delay_ms=25.0,
    ie_base=11.0,
    ie_gamma2=40.0,
    ie_gamma3=10.0,
)

#: A SILK-like wideband codec (what Skype used): low base impairment,
#: moderate loss robustness thanks to in-band FEC.
SILK_WB = CodecSpec(
    name="SILK-WB",
    bitrate_kbps=24.0,
    frame_ms=20.0,
    codec_delay_ms=5.0,
    ie_base=2.0,
    ie_gamma2=28.0,
    ie_gamma3=12.0,
)

#: An Opus-like wideband codec for completeness.
OPUS_WB = CodecSpec(
    name="Opus-WB",
    bitrate_kbps=32.0,
    frame_ms=20.0,
    codec_delay_ms=6.5,
    ie_base=1.0,
    ie_gamma2=25.0,
    ie_gamma3=12.0,
)

#: Default codec for all quality computations (Skype-era wideband).
DEFAULT_CODEC = SILK_WB
