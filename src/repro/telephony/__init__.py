"""VoIP telephony substrate: calls, codecs, quality models, RTP traces.

The paper links network metrics to user experience through two quality
measures: the user-labelled *Poor Call Rate* (PCR, ratings of 1-2 on a
5-point scale) and the *Mean Opinion Score* (MOS) computed with the
E-model of Cole & Rosenbluth [17] / ITU-T G.107.  This package implements
both, plus an RTP-style packet-trace simulator used to validate that
thresholds on call-average metrics approximate packet-trace MOS (§2.2).
"""

from repro.telephony.call import Call, CallOutcome
from repro.telephony.codec import CodecSpec, G711, G729, SILK_WB, OPUS_WB, DEFAULT_CODEC
from repro.telephony.quality import (
    QualityModel,
    mos_from_network,
    mos_from_r_factor,
    poor_call_probability,
    r_factor,
    sample_rating,
)
from repro.telephony.rtp import (
    GilbertElliottLoss,
    PacketTrace,
    rfc3550_jitter,
    simulate_rtp_stream,
    trace_metrics,
    trace_mos,
)
from repro.telephony.sessions import call_trace_mos, trace_for_call

__all__ = [
    "Call",
    "CallOutcome",
    "CodecSpec",
    "G711",
    "G729",
    "SILK_WB",
    "OPUS_WB",
    "DEFAULT_CODEC",
    "QualityModel",
    "r_factor",
    "mos_from_r_factor",
    "mos_from_network",
    "poor_call_probability",
    "sample_rating",
    "GilbertElliottLoss",
    "PacketTrace",
    "rfc3550_jitter",
    "simulate_rtp_stream",
    "trace_metrics",
    "trace_mos",
    "trace_for_call",
    "call_trace_mos",
]
