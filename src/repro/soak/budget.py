"""How long and how hard one soak runs: the :class:`SoakBudget`.

A soak is *time-compressed*: the call clock (``t_hours``, the clock every
wire message and fault window carries) advances ``hours_per_tick`` per
tick while wall-clock advances milliseconds, so a smoke-sized run crosses
days of predictor refreshes, WAL age rotations, compaction horizons and
relay-outage windows in well under a minute.  Work is therefore counted
in *ticks*, never in wall seconds -- two runs with the same budget and
seed do the same work in the same order -- with ``time_budget_s`` as a
safety cap that truncates (and says so in the report) rather than fails.

Presets mirror :class:`~repro.verify.runner.VerifyBudget`: ``smoke`` is
the CI gate (tens of seconds), ``full`` is the overnight endurance run.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SoakBudget"]


@dataclass(frozen=True, slots=True)
class SoakBudget:
    """One soak's schedule; everything derives from ``seed``.

    Every ``*_every_ticks`` knob schedules one leg of the operational
    lifecycle; ``0`` disables that leg.  The tick loop is the only clock
    that matters for determinism -- ``time_budget_s`` only truncates.
    """

    #: Tick-loop length; each tick advances the call clock and drives calls.
    ticks: int = 400
    #: Request + measurement pairs driven per tick.
    calls_per_tick: int = 6
    #: Call-clock hours per tick (the time compression ratio).
    hours_per_tick: float = 0.25
    #: Logical client population (src/dst ids drawn from it).
    n_clients: int = 8
    #: Store-snapshot (WAL fold-down) cadence.
    snapshot_every_ticks: int = 25
    #: Standalone compaction cadence (between snapshots).
    compact_every_ticks: int = 40
    #: Kill + recover cadence (fingerprint-checked on every restore).
    kill_every_ticks: int = 60
    #: Every Nth kill also races the restore against an in-flight
    #: compaction thread (1 = every kill).
    raced_kill_every: int = 2
    #: Metrics-scrape cadence (1 = every tick, as a scraper would).
    scrape_every_ticks: int = 1
    #: Resource trend-line sampling cadence.
    sample_every_ticks: int = 4
    #: Trailing samples the watchdog's slope test looks at.
    window_samples: int = 20
    #: Shard kill/restart cadence when a ring is configured.
    shard_kill_every_ticks: int = 90
    #: Gossip anti-entropy cadence when a ring is configured.
    gossip_every_ticks: int = 15
    #: Ring size; 0 or 1 soaks a single durable controller.
    n_shards: int = 0
    #: Wall-clock safety cap; the loop truncates (reported) past it.
    time_budget_s: float | None = None
    #: Master seed: workload, fault plan, and kill schedule all derive
    #: from it, so a report's seed reproduces its run.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.ticks < 1:
            raise ValueError("ticks must be >= 1")
        if self.calls_per_tick < 1:
            raise ValueError("calls_per_tick must be >= 1")
        if self.hours_per_tick <= 0.0:
            raise ValueError("hours_per_tick must be > 0")
        if self.n_clients < 2:
            raise ValueError("n_clients must be >= 2 (src != dst)")
        if self.window_samples < 4:
            raise ValueError("window_samples must be >= 4 for a slope")
        if self.raced_kill_every < 1:
            raise ValueError("raced_kill_every must be >= 1")
        if self.n_shards < 0:
            raise ValueError("n_shards must be >= 0")
        for name in (
            "snapshot_every_ticks",
            "compact_every_ticks",
            "kill_every_ticks",
            "scrape_every_ticks",
            "sample_every_ticks",
            "shard_kill_every_ticks",
            "gossip_every_ticks",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0 (0 disables)")
        if self.time_budget_s is not None and self.time_budget_s <= 0.0:
            raise ValueError("time_budget_s must be > 0 when set")

    @property
    def horizon_hours(self) -> float:
        """Call-clock span the whole run covers."""
        return self.ticks * self.hours_per_tick

    @classmethod
    def smoke(cls, seed: int = 0) -> "SoakBudget":
        """The CI gate: ~4 simulated days, several kill/recover cycles,
        done in well under 45 s on a laptop."""
        return cls(
            ticks=360,
            calls_per_tick=6,
            hours_per_tick=0.25,
            snapshot_every_ticks=25,
            compact_every_ticks=40,
            kill_every_ticks=60,
            sample_every_ticks=4,
            window_samples=20,
            time_budget_s=75.0,
            seed=seed,
        )

    @classmethod
    def full(cls, seed: int = 0) -> "SoakBudget":
        """The endurance run: ~2 simulated years, hours of wall clock,
        hundreds of restore cycles.  Run it overnight, not in the gate."""
        return cls(
            ticks=70_000,
            calls_per_tick=8,
            hours_per_tick=0.25,
            snapshot_every_ticks=50,
            compact_every_ticks=80,
            kill_every_ticks=120,
            sample_every_ticks=8,
            window_samples=60,
            time_budget_s=4 * 3600.0,
            seed=seed,
        )
