"""Invariant watchdogs: trend lines that must not grow without bound.

The failures a soak exists to catch -- object leaks, fd leaks, WAL
segment pile-up, metric-cardinality creep -- all share one signature: a
resource line that climbs monotonically for as long as you let it run.
Any single sample is meaningless (RSS jitters, gc counts breathe), so
the watchdog applies a *windowed slope test* over the trailing
``window_samples`` observations of each line:

a line is violated only when, over the window, **all three** hold:

* the least-squares slope exceeds the line's ``max_slope_per_sample``;
* the absolute growth (last - first) clears ``min_growth`` (so noise on
  a flat line can never trip the gate); and
* at least ``min_monotonic_frac`` of the window's steps were increases
  (a leak climbs relentlessly; a healthy sawtooth -- WAL segments
  between compactions -- goes down as often as up).

Samplers here are deliberately stdlib-only: ``resource.getrusage`` for
RSS (a high-watermark: it plateaus for healthy processes and keeps
climbing for leaky ones), ``gc`` for the live object census (collected
first, so floating garbage doesn't masquerade as a leak), and
``/proc/self/fd`` for open descriptors.
"""

from __future__ import annotations

import gc
import os
import resource
from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_INVARIANTS",
    "InvariantSpec",
    "TrendWatchdog",
    "sample_gc_objects",
    "sample_open_fds",
    "sample_rss_kb",
]


@dataclass(frozen=True, slots=True)
class InvariantSpec:
    """One trend line's no-unbounded-growth contract."""

    #: Trend-line name (also the ``invariant`` field in report failures).
    name: str
    help: str
    #: Least-squares slope ceiling, in the line's unit per sample.
    max_slope_per_sample: float
    #: Absolute growth floor across the window; below it, never violated.
    min_growth: float
    #: Fraction of window steps that must be increases to count as
    #: monotonic growth (leaks climb; healthy sawtooths oscillate).
    min_monotonic_frac: float = 0.6


#: The five mandated lines, with thresholds sized for the smoke budget's
#: sampling cadence and generous enough that a healthy controller under
#: chaos never grazes them (see docs/soak.md for the calibration).
DEFAULT_INVARIANTS: tuple[InvariantSpec, ...] = (
    InvariantSpec(
        name="rss_kb",
        help="resident-set high watermark (resource.getrusage, KiB)",
        max_slope_per_sample=512.0,
        min_growth=16_384.0,
    ),
    InvariantSpec(
        name="gc_objects",
        help="live tracked objects after gc.collect()",
        max_slope_per_sample=400.0,
        min_growth=8_000.0,
    ),
    InvariantSpec(
        name="open_fds",
        help="open file descriptors (/proc/self/fd)",
        max_slope_per_sample=0.5,
        min_growth=8.0,
    ),
    InvariantSpec(
        name="wal_segments",
        help="WAL segment files on disk across every soaked store",
        max_slope_per_sample=0.75,
        min_growth=12.0,
    ),
    InvariantSpec(
        name="metric_series",
        help="label series across every soaked metrics registry",
        max_slope_per_sample=3.0,
        min_growth=60.0,
    ),
)


def sample_rss_kb() -> float:
    """Peak resident set in KiB (``ru_maxrss`` is KiB on Linux)."""
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def sample_gc_objects() -> float:
    """Live tracked objects, with floating garbage collected away first."""
    gc.collect()
    return float(len(gc.get_objects()))


def sample_open_fds() -> float:
    """Open descriptor count; -1 when the platform offers no cheap census
    (the watchdog skips lines that never produce a valid sample)."""
    for fd_dir in ("/proc/self/fd", "/dev/fd"):
        try:
            return float(len(os.listdir(fd_dir)))
        except OSError:
            continue
    return -1.0


def _least_squares_slope(values: list[float]) -> float:
    """Slope of the best-fit line through (0, v0), (1, v1), ... ."""
    n = len(values)
    if n < 2:
        return 0.0
    mean_x = (n - 1) / 2.0
    mean_y = sum(values) / n
    num = sum((i - mean_x) * (v - mean_y) for i, v in enumerate(values))
    den = sum((i - mean_x) ** 2 for i in range(n))
    return num / den if den else 0.0


@dataclass(slots=True)
class TrendWatchdog:
    """Collects per-line samples and renders windowed-slope verdicts."""

    specs: tuple[InvariantSpec, ...] = DEFAULT_INVARIANTS
    window_samples: int = 20
    series: dict[str, list[float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for spec in self.specs:
            self.series.setdefault(spec.name, [])

    def record(self, name: str, value: float) -> None:
        """Append one sample; negative values mean "sampler unavailable"
        and are dropped so a platform gap never fakes a trend."""
        if value >= 0.0:
            self.series.setdefault(name, []).append(float(value))

    def n_samples(self, name: str) -> int:
        return len(self.series.get(name, ()))

    def evaluate(self) -> list[dict]:
        """One verdict dict per spec over its trailing window.

        A line with fewer than four samples renders an informational
        verdict (``enough_data: false``) that can never be violated --
        a truncated run must not fail on the lines it barely sampled.
        """
        verdicts: list[dict] = []
        for spec in self.specs:
            window = self.series.get(spec.name, [])[-self.window_samples :]
            n = len(window)
            if n < 4:
                verdicts.append(
                    {
                        "invariant": spec.name,
                        "enough_data": False,
                        "n_samples": n,
                        "violated": False,
                    }
                )
                continue
            slope = _least_squares_slope(window)
            growth = window[-1] - window[0]
            steps = [b - a for a, b in zip(window, window[1:])]
            monotonic_frac = sum(1 for s in steps if s > 0) / len(steps)
            violated = (
                slope > spec.max_slope_per_sample
                and growth >= spec.min_growth
                and monotonic_frac >= spec.min_monotonic_frac
            )
            verdicts.append(
                {
                    "invariant": spec.name,
                    "enough_data": True,
                    "n_samples": n,
                    "first": window[0],
                    "last": window[-1],
                    "growth": growth,
                    "slope_per_sample": slope,
                    "monotonic_frac": monotonic_frac,
                    "max_slope_per_sample": spec.max_slope_per_sample,
                    "min_growth": spec.min_growth,
                    "min_monotonic_frac": spec.min_monotonic_frac,
                    "violated": violated,
                }
            )
        return verdicts
