"""Chaos soak harness: time-compressed endurance runs with watchdogs.

Tier-1 tests and the verify plane prove the system is *correct at a
point*; the soak proves it stays healthy *over time*.  One run drives a
durable controller (or sharded ring) under a seed-derived chaos plan
while cycling the full operational lifecycle -- WAL rotation and
compaction, snapshot + kill + recover (fingerprint-checked, sometimes
racing a live compaction), shard restarts with gossip catch-up, metrics
scrapes -- and watches resource trend lines (RSS, gc objects, open fds,
WAL segments, metric series) for the slow monotonic growth that only
shows up under sustained load.

* :mod:`repro.soak.budget` -- :class:`SoakBudget`, with ``smoke()``
  (sub-minute, runs in CI) and ``full()`` (hours) presets;
* :mod:`repro.soak.watchdog` -- trend samplers and the windowed-slope
  invariant test;
* :mod:`repro.soak.chaos` -- seed-derived fault plans plus deliberately
  planted leaks for self-testing the watchdog;
* :mod:`repro.soak.runner` -- :func:`run_soak` behind ``repro soak`` and
  ``make test-soak``, emitting a :class:`SoakReport` and, on failure, a
  seed-reproducible JSON artifact under ``.soak-failures/``.
"""

from repro.soak.budget import SoakBudget
from repro.soak.chaos import PLANT_KINDS, LeakyPolicy, derive_fault_plan
from repro.soak.runner import SoakReport, run_soak
from repro.soak.watchdog import DEFAULT_INVARIANTS, InvariantSpec, TrendWatchdog

__all__ = [
    "DEFAULT_INVARIANTS",
    "InvariantSpec",
    "LeakyPolicy",
    "PLANT_KINDS",
    "SoakBudget",
    "SoakReport",
    "TrendWatchdog",
    "derive_fault_plan",
    "run_soak",
]
