"""Seed-derived chaos schedules and deliberately planted defects.

Two halves:

* :func:`derive_fault_plan` expands a seed into a continuous
  :class:`~repro.deployment.faults.FaultPlan` covering the soak's whole
  call-clock horizon -- relay outages (the controller must repick around
  dead relays, then fail back) and blackhole windows (assignments whose
  measurement never arrives).  Same seed, same horizon, same plan.
* The **plants**: self-test defects the watchdog must catch.
  :class:`LeakyPolicy` hoards gc-tracked objects on every observe;
  ``repro soak --plant fds`` / ``--plant series`` leak a file handle /
  churn a fresh label value per tick (both implemented in the runner; the
  shared :data:`PLANT_KINDS` names all three).  A planted run coming back
  green means the watchdog thresholds have drifted useless -- that is the
  regression ``tests/test_soak.py`` pins.
"""

from __future__ import annotations

import random

from repro.core.policy import ViaPolicy
from repro.deployment.faults import FaultPlan
from repro.netmodel.world import RelayOutage

__all__ = ["PLANT_KINDS", "SOAK_RELAYS", "LeakyPolicy", "derive_fault_plan"]

#: The relays the workload's option menu uses; outages schedule on these
#: so every outage actually hits live assignment paths.
SOAK_RELAYS = (1, 2, 3)

#: Valid values for ``run_soak(plant=...)`` / ``repro soak --plant``.
PLANT_KINDS = ("objects", "fds", "series")


def derive_fault_plan(seed: int, horizon_hours: float) -> FaultPlan:
    """Expand ``seed`` into continuous chaos across ``horizon_hours``.

    Relay outages recur every ~4-20 call-clock hours and last 1-6 hours;
    blackhole windows are sparser (every ~20-60 hours, 0.5-2 hours).  The
    RNG stream is private to this function, so the plan is a pure
    function of ``(seed, horizon_hours)``.
    """
    rng = random.Random(seed * 7919 + 101)
    outages: list[RelayOutage] = []
    t = rng.uniform(2.0, 6.0)
    while t < horizon_hours:
        duration = rng.uniform(1.0, 6.0)
        outages.append(
            RelayOutage(
                relay_id=rng.choice(SOAK_RELAYS),
                start_hours=t,
                end_hours=t + duration,
            )
        )
        t += duration + rng.uniform(3.0, 14.0)
    blackholes: list[tuple[float, float]] = []
    t = rng.uniform(10.0, 30.0)
    while t < horizon_hours:
        duration = rng.uniform(0.5, 2.0)
        blackholes.append((t, t + duration))
        t += duration + rng.uniform(20.0, 60.0)
    return FaultPlan(
        seed=seed,
        relay_outages=tuple(outages),
        blackhole_windows=tuple(blackholes),
    )


class LeakyPolicy(ViaPolicy):
    """A :class:`~repro.core.policy.ViaPolicy` that leaks on purpose.

    Every ``observe`` parks ``LEAK_PER_OBSERVE`` small lists in a
    class-level hoard that nothing ever releases -- the classic
    grows-with-traffic retention bug.  Lists, specifically: CPython's
    collector never GC-tracks atomic objects and *untracks* dicts and
    tuples with only atomic contents during a collect pass, so a hoard
    of those would be invisible to the watchdog's ``gc_objects``
    sampler (which counts tracked objects after ``gc.collect()``).
    Lists stay tracked forever.

    Behaviour is otherwise bit-identical to the base policy, so a planted
    soak still exercises every lifecycle leg while it leaks.
    """

    LEAK_PER_OBSERVE = 150

    #: Class-level on purpose: restarts build fresh policy instances, and
    #: the leak must survive them the way a process-global cache would.
    hoard: list[list] = []

    def observe(self, call, option, metrics) -> None:
        cls = type(self)
        base = len(cls.hoard)
        cls.hoard.extend([base + i] for i in range(self.LEAK_PER_OBSERVE))
        super().observe(call, option, metrics)

    @classmethod
    def reset(cls) -> None:
        cls.hoard.clear()
