"""The soak loop behind ``repro soak`` / ``make test-soak``.

One :func:`run_soak` call drives a durable controller (or a sharded
ring, when ``budget.n_shards >= 2``) through the *whole* operational
lifecycle, continuously, under a seed-derived chaos
:class:`~repro.deployment.faults.FaultPlan`:

* a seeded traffic workload (hello / request / measurement) whose call
  clock advances hours per tick -- time compression, so a sub-minute
  smoke run crosses days of predictor refreshes, WAL age rotations,
  relay outages and blackhole windows;
* store snapshots, standalone compactions, and **kill + recover cycles**
  on a schedule, with the full-controller fingerprint-equivalence
  contract (:func:`repro.verify.crashpoints.controller_fingerprint`)
  checked on every restore -- including restores deliberately raced
  against an in-flight compaction thread;
* shard kill/restart plus gossip catch-up when a ring is configured;
* a metrics scrape every tick, exactly as a Prometheus poller would;
* resource trend sampling into the :mod:`repro.soak.watchdog`, which
  fails the run on monotonic-growth invariant violations (leaks,
  fd creep, WAL pile-up, metric-cardinality creep).

Like :func:`repro.verify.runner.run_verify`, a soak never raises on a
finding: failures land in the :class:`SoakReport` and, when any exist,
in a seed-reproducible JSON artifact under ``.soak-failures/``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import random
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.history import history_to_dict
from repro.core.policy import ViaConfig, ViaPolicy
from repro.deployment.controller import ViaController
from repro.deployment.protocol import (
    MeasurementMessage,
    RequestMessage,
    decode_option,
    encode_option,
)
from repro.netmodel.metrics import PathMetrics
from repro.netmodel.options import RelayOption
from repro.obs.metrics import MetricsRegistry
from repro.soak.budget import SoakBudget
from repro.soak.chaos import PLANT_KINDS, LeakyPolicy, derive_fault_plan
from repro.soak.watchdog import (
    DEFAULT_INVARIANTS,
    TrendWatchdog,
    sample_gc_objects,
    sample_open_fds,
    sample_rss_kb,
)
from repro.store.facade import Store, StoreConfig
from repro.store.recovery import recover
from repro.store.wal import segment_paths
from repro.verify.crashpoints import controller_fingerprint

__all__ = ["SOAK_OPTIONS", "SOAK_SITES", "SoakReport", "run_soak"]

SOAK_SITES = ("US", "GB", "IN", "SG", "DE", "BR", "JP", "ZA")

#: The workload's relay menu; the chaos plan schedules outages on these
#: same relays, so assignments keep crossing live/dead transitions.
SOAK_OPTIONS = [
    RelayOption.bounce(1),
    RelayOption.bounce(2),
    RelayOption.bounce(3),
    RelayOption.transit(1, 2),
    RelayOption.transit(2, 3),
]

_ENCODED_OPTIONS = [encode_option(o) for o in SOAK_OPTIONS]


def _policy_config(budget: SoakBudget) -> ViaConfig:
    """Tight refresh + hot epsilon (the statemachine recipe): the run
    crosses predictor refreshes constantly and keeps the policy RNG hot,
    so every restore has real learned state to get wrong."""
    return ViaConfig(
        metric="rtt_ms",
        refresh_hours=1.0,
        epsilon=0.25,
        min_direct_samples=1,
        seed=budget.seed,
    )


#: Small segments on every axis so rotation-by-size, -count and -age all
#: fire many times per smoke run; fsync off because the soak measures
#: lifecycle health, not power-loss durability (the verify plane owns
#: that), and the unbuffered WAL writes stay process-crash-safe.
_STORE_CONFIG = StoreConfig(
    fsync="off",
    max_segment_bytes=32 << 10,
    max_segment_records=200,
    max_segment_age_s=2.0,
)


@dataclass(slots=True)
class SoakReport:
    """What one soak drove, sampled, and found."""

    seed: int
    budget: SoakBudget
    n_ticks: int = 0
    n_calls: int = 0
    n_measurements: int = 0
    n_blackholed: int = 0
    n_hellos: int = 0
    n_outage_transitions: int = 0
    n_snapshots: int = 0
    n_compactions: int = 0
    n_restores: int = 0
    n_raced_restores: int = 0
    n_shard_restarts: int = 0
    n_gossip_rounds: int = 0
    n_scrapes: int = 0
    scrape_bytes: int = 0
    n_samples: int = 0
    #: Final windowed-slope verdict per invariant (see watchdog.evaluate).
    trends: list[dict] = field(default_factory=list)
    failures: list[dict] = field(default_factory=list)
    #: Digest of the final controller fingerprint(s) + workload counters:
    #: equal seeds + budgets must produce equal values.
    workload_fingerprint: str = ""
    #: True when ``time_budget_s`` cut the tick loop short.
    truncated: bool = False
    #: True when a watchdog violation stopped the loop early.
    stopped_early: bool = False
    duration_s: float = 0.0
    artifact_path: Path | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        b = self.budget
        lines = [
            f"soak seed={self.seed}: {self.n_ticks}/{b.ticks} ticks "
            f"({self.n_ticks * b.hours_per_tick:.0f} h call-clock) "
            f"in {self.duration_s:.1f}s wall"
        ]
        lines.append(
            f"  traffic: {self.n_calls} calls, {self.n_measurements} measurements, "
            f"{self.n_blackholed} blackholed, {self.n_hellos} hellos, "
            f"{self.n_outage_transitions} outage transitions"
        )
        lines.append(
            f"  lifecycle: {self.n_snapshots} snapshots, {self.n_compactions} "
            f"compactions, {self.n_restores} restores ({self.n_raced_restores} "
            f"racing compaction), {self.n_shard_restarts} shard restarts, "
            f"{self.n_gossip_rounds} gossip rounds, {self.n_scrapes} scrapes"
        )
        for t in self.trends:
            if not t.get("enough_data"):
                lines.append(f"  trend {t['invariant']}: insufficient samples")
                continue
            verdict = "VIOLATED" if t["violated"] else "ok"
            lines.append(
                f"  trend {t['invariant']}: slope {t['slope_per_sample']:+.1f}/sample, "
                f"growth {t['growth']:+.0f} over {t['n_samples']} samples -- {verdict}"
            )
        if self.truncated:
            lines.append("  TIME BUDGET EXHAUSTED: later ticks were skipped")
        if self.ok:
            lines.append("  PASS")
        else:
            named = sorted({f.get("invariant", f.get("leg", "?")) for f in self.failures})
            lines.append(f"  FAIL: {len(self.failures)} failures ({', '.join(named)})")
            if self.artifact_path is not None:
                lines.append(f"  artifact: {self.artifact_path}")
            lines.append(f"  reproduce with: repro soak --seed {self.seed}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        payload = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name != "artifact_path"
        }
        payload["budget"] = dataclasses.asdict(self.budget)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SoakReport":
        """Rebuild a report from :meth:`to_dict` output (artifact JSON)."""
        data = dict(payload)
        budget = SoakBudget(**data.pop("budget"))
        return cls(budget=budget, **data)


def run_soak(
    budget: SoakBudget | None = None,
    *,
    workdir: str | Path | None = None,
    registry: MetricsRegistry | None = None,
    artifacts_dir: str | Path = ".soak-failures",
    plant: str | None = None,
) -> SoakReport:
    """Run one soak under ``budget``; never raises on a finding.

    ``plant`` injects a deliberate defect for self-testing the watchdog:
    ``"objects"`` swaps in the leaking policy wrapper, ``"fds"`` leaks a
    file handle per tick, ``"series"`` churns a fresh label value per
    tick.  A planted run must come back ``ok == False`` with the
    offending invariant named in the report -- that is the soak's own
    planted-bug test (``tests/test_soak.py``).
    """
    budget = budget or SoakBudget()
    if plant is not None and plant not in PLANT_KINDS:
        raise ValueError(f"unknown plant {plant!r}; expected one of {PLANT_KINDS}")
    registry = registry if registry is not None else MetricsRegistry()
    own_workdir = workdir is None
    workdir = Path(tempfile.mkdtemp(prefix="repro-soak-")) if own_workdir else Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    runner = _SoakRunner(budget, workdir=workdir, registry=registry, plant=plant)
    try:
        report = runner.run()
    finally:
        if own_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
    if report.failures:
        report.artifact_path = _write_artifact(artifacts_dir, report)
    return report


def _write_artifact(artifacts_dir: str | Path, report: SoakReport) -> Path:
    directory = Path(artifacts_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"soak-seed{report.seed}-{int(time.time())}.json"
    path.write_text(
        json.dumps(report.to_dict(), indent=2, default=repr), encoding="utf-8"
    )
    return path


class _SoakRunner:
    """One soak's mutable state: controller(s), watchdog, schedules."""

    def __init__(
        self,
        budget: SoakBudget,
        *,
        workdir: Path,
        registry: MetricsRegistry,
        plant: str | None,
    ) -> None:
        self.budget = budget
        self.workdir = workdir
        self.registry = registry
        self.plant = plant
        self.report = SoakReport(seed=budget.seed, budget=budget)
        self.plan = derive_fault_plan(budget.seed, budget.horizon_hours)
        self.watchdog = TrendWatchdog(
            specs=DEFAULT_INVARIANTS, window_samples=budget.window_samples
        )
        self.config = _policy_config(budget)
        self.down: frozenset[int] = frozenset()
        self.deadline: float | None = None
        self._greeted: set[int] = set()
        self._tripped: set[str] = set()
        self._fd_hoard: list = []
        self._kills = 0
        # The soak's own observability, on the registry it is soaking.
        self._obs_ticks = registry.counter(
            "via_soak_ticks_total", "Soak ticks driven."
        )
        self._obs_restores = registry.counter(
            "via_soak_restores_total",
            "Soak kill+recover cycles completed, by kind.",
            ("kind",),
        )
        self._obs_violations = registry.counter(
            "via_soak_invariant_violations_total",
            "Watchdog invariant violations, by invariant.",
            ("invariant",),
        )
        self._obs_duration = registry.gauge(
            "via_soak_last_duration_seconds",
            "Wall time of the most recent soak run.",
        )

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------

    def run(self) -> SoakReport:
        started = time.monotonic()
        if self.budget.time_budget_s is not None:
            self.deadline = started + self.budget.time_budget_s
        if self.plant == "objects":
            LeakyPolicy.reset()
        try:
            if self.budget.n_shards >= 2:
                import asyncio

                asyncio.run(self._run_ring())
            else:
                self._run_single()
        finally:
            for fh in self._fd_hoard:
                fh.close()
            self._fd_hoard.clear()
            if self.plant == "objects":
                LeakyPolicy.reset()
            self.report.duration_s = time.monotonic() - started
            self._obs_duration.set(self.report.duration_s)
        self.report.trends = self.watchdog.evaluate()
        return self.report

    # ------------------------------------------------------------------
    # Shared per-tick machinery
    # ------------------------------------------------------------------

    def _out_of_time(self) -> bool:
        if self.deadline is not None and time.monotonic() > self.deadline:
            self.report.truncated = True
            return True
        return False

    def _due(self, tick: int, every: int) -> bool:
        return every > 0 and (tick + 1) % every == 0

    def _plant_tick(self, tick: int) -> None:
        if self.plant == "fds":
            self._fd_hoard.append(open(os.devnull, "rb"))
        elif self.plant == "series":
            # Several fresh label values per tick: the unbounded-label
            # antipattern (e.g. a client id as a label value).
            probe = self.registry.counter(
                "via_soak_leak_probe_total",
                "Planted per-tick label churn (soak watchdog self-test).",
                ("probe",),
            )
            for lane in range(4):
                probe.labels(probe=f"p{tick}-{lane}").inc()

    def _draw_metrics(
        self, rng: random.Random, option: RelayOption, t_hours: float
    ) -> tuple[float, float, float]:
        """Plausible path metrics: per-relay baselines, a diurnal swing,
        and blackhole-grade numbers when the chosen path is down."""
        relays = set(option.relay_ids())
        if relays & self.down:
            return (
                850.0 + rng.uniform(0.0, 150.0),
                min(1.0, 0.35 + rng.random() * 0.3),
                40.0 + rng.uniform(0.0, 25.0),
            )
        diurnal = 12.0 * math.sin(math.tau * (t_hours % 24.0) / 24.0)
        base = 55.0 + 6.0 * len(relays) + 3.0 * sum(relays)
        rtt = max(5.0, base + diurnal + rng.uniform(-8.0, 20.0))
        return rtt, rng.uniform(0.0, 0.04), rng.uniform(0.5, 12.0)

    def _apply_outages(self, tick: int, targets) -> None:
        """Push the fault plan's relay-outage state for this tick."""
        downs = self.plan.relays_down_at((tick + 1) * self.budget.hours_per_tick)
        if downs != self.down:
            self.down = downs
            self.report.n_outage_transitions += 1
        for target in targets:
            target.set_down_relays(self.down)

    def _sample_and_check(self, tick: int, wal_dirs, registries) -> bool:
        """Record one sample of every trend line; True = a new violation."""
        self.watchdog.record("rss_kb", sample_rss_kb())
        self.watchdog.record("gc_objects", sample_gc_objects())
        self.watchdog.record("open_fds", sample_open_fds())
        self.watchdog.record(
            "wal_segments",
            float(sum(len(segment_paths(d)) for d in wal_dirs)),
        )
        self.watchdog.record(
            "metric_series", float(sum(r.total_series for r in registries))
        )
        self.report.n_samples += 1
        violated = False
        for verdict in self.watchdog.evaluate():
            if verdict["violated"] and verdict["invariant"] not in self._tripped:
                self._tripped.add(verdict["invariant"])
                self._obs_violations.labels(invariant=verdict["invariant"]).inc()
                self.report.failures.append(
                    {"leg": "watchdog", "tick": tick, **verdict}
                )
                violated = True
        return violated

    def _fingerprint_workload(self, *controllers) -> None:
        digest = hashlib.sha256()
        for controller in controllers:
            digest.update(controller_fingerprint(controller).encode("utf-8"))
        r = self.report
        digest.update(
            f"{r.n_calls}:{r.n_measurements}:{r.n_restores}:{r.n_hellos}".encode()
        )
        r.workload_fingerprint = digest.hexdigest()[:16]

    # ------------------------------------------------------------------
    # Single durable controller
    # ------------------------------------------------------------------

    def _new_controller(self) -> ViaController:
        """A controller on the soak's store root, sharing one registry
        across restarts so counters and series survive exactly as they
        would in a process that restarts its controller object."""
        policy_cls = LeakyPolicy if self.plant == "objects" else ViaPolicy
        return ViaController(
            self.config,
            store=Store(self.workdir / "store", _STORE_CONFIG, registry=self.registry),
            registry=self.registry,
            policy_cls=policy_cls,
        )

    def _run_single(self) -> None:
        budget = self.budget
        report = self.report
        rng = random.Random(budget.seed + 1)
        controller = self._new_controller()
        wal_dirs = [self.workdir / "store" / "wal"]
        try:
            for tick in range(budget.ticks):
                if self._out_of_time():
                    break
                self._apply_outages(tick, [controller])
                self._drive_tick_single(controller, tick, rng)
                self._plant_tick(tick)
                if self._due(tick, budget.scrape_every_ticks):
                    text = controller.metrics_text()
                    report.n_scrapes += 1
                    report.scrape_bytes += len(text)
                if self._due(tick, budget.snapshot_every_ticks):
                    controller.save_store_snapshot()
                    report.n_snapshots += 1
                if self._due(tick, budget.compact_every_ticks):
                    controller.store.compact()
                    report.n_compactions += 1
                if self._due(tick, budget.kill_every_ticks):
                    controller = self._crash_and_recover(controller, tick)
                if self._due(tick, budget.sample_every_ticks):
                    if self._sample_and_check(tick, wal_dirs, [self.registry]):
                        report.stopped_early = True
                        break
                report.n_ticks += 1
                self._obs_ticks.inc()
            self._fingerprint_workload(controller)
        finally:
            controller.store.close()

    def _drive_tick_single(
        self, controller: ViaController, tick: int, rng: random.Random
    ) -> None:
        budget = self.budget
        report = self.report
        for j in range(budget.calls_per_tick):
            t = (tick + (j + 1) / budget.calls_per_tick) * budget.hours_per_tick
            src = rng.randrange(budget.n_clients)
            dst = (src + 1 + rng.randrange(budget.n_clients - 1)) % budget.n_clients
            for cid in (src, dst):
                # First contact says hello; a trickle of re-hellos plays
                # the role of client reconnect churn.
                if cid not in self._greeted or rng.random() < 0.01:
                    controller._count_message("hello")
                    controller._on_hello(cid, SOAK_SITES[cid % len(SOAK_SITES)])
                    self._greeted.add(cid)
                    report.n_hellos += 1
            request = RequestMessage(
                src_id=src, dst_id=dst, t_hours=t, options=list(_ENCODED_OPTIONS)
            )
            controller._count_message("request")
            reply = controller._on_request(request)
            report.n_calls += 1
            if self.plan.blackholed_at(t):
                # The chaos plan ate the call setup: no measurement ever
                # comes back for this assignment.
                report.n_blackholed += 1
                continue
            rtt, loss, jitter = self._draw_metrics(rng, decode_option(reply.option), t)
            measurement = MeasurementMessage(
                src_id=src,
                dst_id=dst,
                t_hours=t,
                option=reply.option,
                rtt_ms=rtt,
                loss_rate=loss,
                jitter_ms=jitter,
            )
            controller._count_message("measurement")
            controller._on_measurement(measurement)
            report.n_measurements += 1

    def _crash_and_recover(self, controller: ViaController, tick: int) -> ViaController:
        """Kill the controller mid-stream and bring up a recovered one.

        Every cycle checks the fingerprint-equivalence contract; every
        ``raced_kill_every``-th cycle first launches a compaction on a
        background thread so the recovery scan races segment deletion
        (the production failure mode: a janitor compacting while the
        replacement process comes up).
        """
        self._kills += 1
        raced = self._kills % self.budget.raced_kill_every == 0
        pre = controller_fingerprint(controller)
        store = controller.store
        compaction: threading.Thread | None = None
        if raced:
            compaction = threading.Thread(
                target=self._compact_quietly, args=(store,), daemon=True
            )
            compaction.start()
        # The crash: drop the raw WAL handle -- no seal, no snapshot.
        wal = store.wal
        if wal._fh is not None:
            wal._fh.close()
            wal._fh = None
        revived = self._new_controller()
        # The registry intentionally survives restarts (a process-local
        # registry would reset the metric_series trend line every kill),
        # but a real replacement process starts its counters at zero and
        # rebuilds them from snapshot + replay -- which is exactly the
        # equivalence being checked.  Zero them here or replay would
        # re-increment on top of the live values.
        for series in revived._msg_counts.values():
            series.value = 0.0
        outcome = recover(revived.store, revived)
        if compaction is not None:
            compaction.join(timeout=30.0)
            # The race may have deleted segments after the new WAL indexed
            # them; reconcile so later compactions see only live files.
            gone = [s for s in revived.store.wal.sealed_segments() if not s.path.exists()]
            if gone:
                revived.store.wal.drop_segments(gone)
        post = controller_fingerprint(revived)
        if outcome.n_corrupt:
            self.report.failures.append(
                {
                    "leg": "restore",
                    "invariant": "recovery-clean-log",
                    "tick": tick,
                    "raced": raced,
                    "detail": f"clean log reported {outcome.n_corrupt} corrupt records",
                }
            )
        if post != pre:
            self.report.failures.append(
                {
                    "leg": "restore",
                    "invariant": "restore-fingerprint-equivalence",
                    "tick": tick,
                    "raced": raced,
                    "detail": "recovered controller diverged from its pre-kill state",
                }
            )
        # Outage state is operator runtime config, not learned state --
        # reapply it exactly as the fault plan's config push would.
        revived.set_down_relays(self.down)
        self.report.n_restores += 1
        if raced:
            self.report.n_raced_restores += 1
        self._obs_restores.labels(kind="raced" if raced else "clean").inc()
        return revived

    @staticmethod
    def _compact_quietly(store: Store) -> None:
        try:
            store.compact()
        except FileNotFoundError:
            # The dying WAL object raced us to a segment; the recovered
            # store's own compactions pick the fold back up.
            pass

    # ------------------------------------------------------------------
    # Sharded ring
    # ------------------------------------------------------------------

    @staticmethod
    def _canonical_history(history, min_window: int) -> dict:
        """A retention- and order-insensitive view of a history.

        Gossip prunes each shard's mirrors to windows ``>= period - 1``
        at its own pace, and merge order varies per shard, so equality
        checks must (a) ignore windows below the retention floor and
        (b) not depend on dict insertion order within a window."""
        payload = history_to_dict(history)
        windows = {
            w: sorted(json.dumps(e, sort_keys=True) for e in entries)
            for w, entries in payload["windows"].items()
            if int(w) >= min_window
        }
        return {"window_hours": payload["window_hours"], "windows": windows}

    @classmethod
    def _shard_fingerprint(cls, shard) -> str:
        """The durable subset of a shard's state: exactly what PR 8's
        WAL-failover contract guarantees survives a crash (own local
        history, labels, counters).  Gossip-merged fleet state is *not*
        durable by design -- the post-restart gossip round re-derives it.
        The local mirror is compared modulo gossip's retention pruning:
        a WAL replay legitimately resurrects windows the live shard had
        already pruned."""
        return json.dumps(
            {
                "local_history": cls._canonical_history(
                    shard.local_history, shard.policy.period - 1
                ),
                "site_labels": {str(k): v for k, v in shard.site_labels.items()},
                "n_measurements": shard.n_measurements,
                "n_requests": shard.n_requests,
            },
            sort_keys=True,
        )

    async def _run_ring(self) -> None:
        from repro.deployment.ring import InProcessRing, ShardedViaClient

        budget = self.budget
        report = self.report
        rng = random.Random(budget.seed + 1)
        ring_root = self.workdir / "ring"
        ring = InProcessRing(budget.n_shards, self.config, store_root=ring_root)
        await ring.start()
        wal_dirs = [ring_root / f"shard-{i}" / "wal" for i in range(budget.n_shards)]
        client = ShardedViaClient(0, SOAK_SITES[0], "127.0.0.1", ring.shards[0].port)
        await client.connect()
        report.n_hellos += 1
        try:
            for tick in range(budget.ticks):
                if self._out_of_time():
                    break
                self._apply_outages(tick, ring.shards)
                client = await self._drive_tick_ring(ring, client, tick, rng)
                self._plant_tick(tick)
                if self._due(tick, budget.scrape_every_ticks):
                    for shard in ring.shards:
                        text = shard.metrics_text()
                        report.scrape_bytes += len(text)
                    report.n_scrapes += 1
                if self._due(tick, budget.gossip_every_ticks):
                    await ring.gossip_round()
                    report.n_gossip_rounds += 1
                    # Post-round, every shard's merged view must agree on
                    # every window all of them still retain.
                    wmin = max(s.policy.period for s in ring.shards) - 1
                    views = {
                        json.dumps(
                            self._canonical_history(s.policy.history, wmin),
                            sort_keys=True,
                        )
                        for s in ring.shards
                    }
                    if len(views) != 1:
                        report.failures.append(
                            {
                                "leg": "gossip",
                                "invariant": "fleet-history-convergence",
                                "tick": tick,
                                "detail": (
                                    f"{len(views)} distinct merged views across "
                                    f"{budget.n_shards} shards for windows >= {wmin}"
                                ),
                            }
                        )
                if self._due(tick, budget.snapshot_every_ticks):
                    for shard in ring.shards:
                        shard.save_store_snapshot()
                    report.n_snapshots += 1
                if self._due(tick, budget.compact_every_ticks):
                    for shard in ring.shards:
                        shard.store.compact()
                    report.n_compactions += 1
                if self._due(tick, budget.shard_kill_every_ticks):
                    client = await self._kill_and_restart_shard(ring, client, tick, rng)
                if self._due(tick, budget.sample_every_ticks):
                    registries = [s.registry for s in ring.shards]
                    if self._sample_and_check(tick, wal_dirs, registries):
                        report.stopped_early = True
                        break
                report.n_ticks += 1
                self._obs_ticks.inc()
            self._fingerprint_workload(*ring.shards)
        finally:
            await client.close()
            await ring.stop()

    async def _drive_tick_ring(self, ring, client, tick: int, rng: random.Random):
        """One tick of wire-level traffic from the soak's single client
        (id 0 calls everyone: pair hashing still spreads the load across
        every shard)."""
        budget = self.budget
        report = self.report
        for j in range(budget.calls_per_tick):
            t = (tick + (j + 1) / budget.calls_per_tick) * budget.hours_per_tick
            dst = 1 + rng.randrange(budget.n_clients - 1)
            reply = await client.assign(dst, SOAK_OPTIONS, t)
            report.n_calls += 1
            if self.plan.blackholed_at(t):
                report.n_blackholed += 1
                continue
            rtt, loss, jitter = self._draw_metrics(rng, reply.option, t)
            await client.report_measurement(
                dst, reply.option, PathMetrics(rtt, loss, jitter), t
            )
            report.n_measurements += 1
        # Fence: a stats round-trip on every shard's connection orders all
        # fire-and-forget measurements before this tick's lifecycle legs.
        await client.fetch_stats()
        return client

    async def _kill_and_restart_shard(self, ring, client, tick: int, rng: random.Random):
        from repro.deployment.ring import ShardController, ShardedViaClient

        budget = self.budget
        report = self.report
        idx = rng.randrange(budget.n_shards)
        shard = ring.shards[idx]
        pre = self._shard_fingerprint(shard)
        # Crash: drop the WAL handle, then tear the frontend down without
        # the clean-shutdown store snapshot.
        wal = shard.store.wal
        if wal._fh is not None:
            wal._fh.close()
            wal._fh = None
        frontend = shard._frontend
        shard._frontend = None
        if frontend is not None:
            await frontend.stop()
        revived = ShardController(
            self.config,
            shard_index=idx,
            n_shards=budget.n_shards,
            gossip_on_map_update=False,
            store=self.workdir / "ring" / f"shard-{idx}",
        )
        await revived.start()
        post = self._shard_fingerprint(revived)
        if post != pre:
            report.failures.append(
                {
                    "leg": "restore",
                    "invariant": "shard-restore-fingerprint-equivalence",
                    "tick": tick,
                    "shard": idx,
                    "detail": "revived shard's durable state diverged from pre-kill",
                }
            )
        revived.set_down_relays(self.down)
        ring.shards[idx] = revived
        ring.publish_map()
        # Catch the revived shard back up on the fleet's history.
        await revived.gossip_now()
        report.n_shard_restarts += 1
        self._obs_restores.labels(kind="shard").inc()
        # The old client still holds a connection to the dead frontend;
        # reconnect against the republished map.
        await client.close()
        fresh = ShardedViaClient(0, SOAK_SITES[0], "127.0.0.1", ring.shards[0].port)
        await fresh.connect()
        report.n_hellos += 1
        return fresh
